//! A textual policy DSL standing in for XACML's XML syntax.
//!
//! The paper's arguments depend on XACML's *semantics* (targets, rules,
//! combining algorithms, obligations); the XML surface syntax only
//! matters for message size, which `dacs-wire`'s verbose codec models.
//! This module provides a human-writable syntax with a lexer, a
//! recursive-descent parser and a pretty-printer (round-trip tested).
//!
//! # Example
//!
//! ```text
//! policy "doctors-read" first-applicable {
//!   target {
//!     resource "id" ~= "ehr/*";
//!   }
//!   rule "permit-doctors" permit {
//!     target {
//!       subject "role" == "doctor";
//!       action "id" == "read";
//!     }
//!     condition lt(hour-of(attr(env, "current-time")), 17)
//!     obligation "log" on permit {
//!       "subject" = attr(subject, "id");
//!     }
//!   }
//!   rule "default-deny" deny { }
//! }
//! ```

use crate::attr::{AttrValue, AttributeId, Category};
use crate::expr::{Expr, Func};
use crate::policy::{
    CombiningAlg, Effect, ObligationExpr, Policy, PolicyElement, PolicyId, PolicySet, Rule,
};
use crate::target::{AllOf, AnyOf, AttrMatch, MatchOp, Target};
use std::fmt::Write as _;

/// A parse error with source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------- lexer --

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Semi,
    Assign,
    EqEq,
    GlobEq,
    Gt,
    Ge,
    Lt,
    Le,
    Bang,
    Hash,
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::Int(i) => write!(f, "integer {i}"),
            Tok::Float(x) => write!(f, "float {x}"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::GlobEq => write!(f, "`~=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Hash => write!(f, "`#`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: u32,
    col: u32,
}

fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    let (mut line, mut col) = (1u32, 1u32);

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    loop {
        let (tl, tc) = (line, col);
        let Some(&c) = chars.peek() else {
            out.push(Spanned {
                tok: Tok::Eof,
                line,
                col,
            });
            break;
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '/' => {
                // Comments: `//` to end of line.
                bump!();
                if chars.peek() == Some(&'/') {
                    while let Some(&n) = chars.peek() {
                        if n == '\n' {
                            break;
                        }
                        bump!();
                    }
                } else {
                    return Err(ParseError {
                        line: tl,
                        col: tc,
                        message: "unexpected `/` (use `//` for comments)".into(),
                    });
                }
            }
            '{' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::LBrace,
                    line: tl,
                    col: tc,
                });
            }
            '}' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::RBrace,
                    line: tl,
                    col: tc,
                });
            }
            '(' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::LParen,
                    line: tl,
                    col: tc,
                });
            }
            ')' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::RParen,
                    line: tl,
                    col: tc,
                });
            }
            ',' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Comma,
                    line: tl,
                    col: tc,
                });
            }
            ';' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Semi,
                    line: tl,
                    col: tc,
                });
            }
            '!' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Bang,
                    line: tl,
                    col: tc,
                });
            }
            '#' => {
                bump!();
                out.push(Spanned {
                    tok: Tok::Hash,
                    line: tl,
                    col: tc,
                });
            }
            '=' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::EqEq,
                        line: tl,
                        col: tc,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Assign,
                        line: tl,
                        col: tc,
                    });
                }
            }
            '~' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::GlobEq,
                        line: tl,
                        col: tc,
                    });
                } else {
                    return Err(ParseError {
                        line: tl,
                        col: tc,
                        message: "expected `~=`".into(),
                    });
                }
            }
            '>' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Ge,
                        line: tl,
                        col: tc,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Gt,
                        line: tl,
                        col: tc,
                    });
                }
            }
            '<' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned {
                        tok: Tok::Le,
                        line: tl,
                        col: tc,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Lt,
                        line: tl,
                        col: tc,
                    });
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            other => {
                                return Err(ParseError {
                                    line,
                                    col,
                                    message: format!("bad escape {other:?}"),
                                })
                            }
                        },
                        Some(c) => s.push(c),
                        None => {
                            return Err(ParseError {
                                line,
                                col,
                                message: "unterminated string".into(),
                            })
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                if c == '-' {
                    s.push('-');
                    bump!();
                    if !chars.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                        return Err(ParseError {
                            line: tl,
                            col: tc,
                            message: "expected digit after `-`".into(),
                        });
                    }
                }
                let mut is_float = false;
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_digit() {
                        s.push(n);
                        bump!();
                    } else if n == '.' && !is_float {
                        is_float = true;
                        s.push('.');
                        bump!();
                    } else {
                        break;
                    }
                }
                let tok = if is_float {
                    Tok::Float(s.parse().map_err(|_| ParseError {
                        line: tl,
                        col: tc,
                        message: format!("bad float literal {s}"),
                    })?)
                } else {
                    Tok::Int(s.parse().map_err(|_| ParseError {
                        line: tl,
                        col: tc,
                        message: format!("bad integer literal {s}"),
                    })?)
                };
                out.push(Spanned {
                    tok,
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_alphanumeric() || n == '_' || n == '-' {
                        s.push(n);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    line: tl,
                    col: tc,
                });
            }
            other => {
                return Err(ParseError {
                    line: tl,
                    col: tc,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn next(&mut self) -> Spanned {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            line: t.line,
            col: t.col,
            message: message.into(),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        let t = self.next();
        if t.tok == tok {
            Ok(())
        } else {
            Err(ParseError {
                line: t.line,
                col: t.col,
                message: format!("expected {tok}, found {}", t.tok),
            })
        }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), ParseError> {
        let t = self.next();
        match &t.tok {
            Tok::Ident(s) if s == kw => Ok(()),
            other => Err(ParseError {
                line: t.line,
                col: t.col,
                message: format!("expected `{kw}`, found {other}"),
            }),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        let t = self.next();
        match t.tok {
            Tok::Str(s) => Ok(s),
            other => Err(ParseError {
                line: t.line,
                col: t.col,
                message: format!("expected string, found {other}"),
            }),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let t = self.next();
        match t.tok {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                line: t.line,
                col: t.col,
                message: format!("expected identifier, found {other}"),
            }),
        }
    }

    fn peek_ident(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    fn combining(&mut self) -> Result<CombiningAlg, ParseError> {
        let name = self.ident()?;
        CombiningAlg::parse(&name)
            .ok_or_else(|| self.err(format!("unknown combining algorithm `{name}`")))
    }

    fn category(&mut self) -> Result<Category, ParseError> {
        let name = self.ident()?;
        Category::parse(&name).ok_or_else(|| self.err(format!("unknown category `{name}`")))
    }

    fn literal(&mut self) -> Result<AttrValue, ParseError> {
        let t = self.next();
        match t.tok {
            Tok::Str(s) => Ok(AttrValue::String(s)),
            Tok::Int(i) => Ok(AttrValue::Integer(i)),
            Tok::Float(x) => Ok(AttrValue::Double(x)),
            Tok::Ident(s) if s == "true" => Ok(AttrValue::Boolean(true)),
            Tok::Ident(s) if s == "false" => Ok(AttrValue::Boolean(false)),
            Tok::Ident(s) if s == "time" => {
                self.expect(Tok::LParen)?;
                let inner = self.next();
                let v = match inner.tok {
                    Tok::Int(i) if i >= 0 => i as u64,
                    other => {
                        return Err(ParseError {
                            line: inner.line,
                            col: inner.col,
                            message: format!(
                                "expected non-negative integer in time(), found {other}"
                            ),
                        })
                    }
                };
                self.expect(Tok::RParen)?;
                Ok(AttrValue::Time(v))
            }
            other => Err(ParseError {
                line: t.line,
                col: t.col,
                message: format!("expected literal, found {other}"),
            }),
        }
    }

    fn match_op(&mut self) -> Result<MatchOp, ParseError> {
        let t = self.next();
        Ok(match t.tok {
            Tok::EqEq => MatchOp::Equals,
            Tok::GlobEq => MatchOp::Glob,
            Tok::Gt => MatchOp::GreaterThan,
            Tok::Ge => MatchOp::GreaterOrEqual,
            Tok::Lt => MatchOp::LessThan,
            Tok::Le => MatchOp::LessOrEqual,
            Tok::Ident(ref s) if s == "contains" => MatchOp::Contains,
            other => {
                return Err(ParseError {
                    line: t.line,
                    col: t.col,
                    message: format!("expected match operator, found {other}"),
                })
            }
        })
    }

    fn attr_match(&mut self) -> Result<AttrMatch, ParseError> {
        let category = self.category()?;
        let name = self.string()?;
        let op = self.match_op()?;
        let value = self.literal()?;
        Ok(AttrMatch {
            attr: AttributeId::new(category, name),
            op,
            value,
        })
    }

    /// `target { clause* }` where clause is a simple match terminated by
    /// `;` or an explicit `any { all { ... } ... }` block.
    fn target(&mut self) -> Result<Target, ParseError> {
        self.expect_ident("target")?;
        self.expect(Tok::LBrace)?;
        let mut any_ofs = Vec::new();
        while self.peek().tok != Tok::RBrace {
            if self.peek_ident("any") {
                self.next();
                self.expect(Tok::LBrace)?;
                let mut all_ofs = Vec::new();
                while self.peek().tok != Tok::RBrace {
                    self.expect_ident("all")?;
                    self.expect(Tok::LBrace)?;
                    let mut matches = Vec::new();
                    while self.peek().tok != Tok::RBrace {
                        matches.push(self.attr_match()?);
                        self.expect(Tok::Semi)?;
                    }
                    self.expect(Tok::RBrace)?;
                    all_ofs.push(AllOf::new(matches));
                }
                self.expect(Tok::RBrace)?;
                any_ofs.push(AnyOf::new(all_ofs));
            } else {
                let m = self.attr_match()?;
                self.expect(Tok::Semi)?;
                any_ofs.push(AnyOf::new(vec![AllOf::new(vec![m])]));
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(Target { any_ofs })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().tok.clone() {
            Tok::Hash => {
                self.next();
                let name = self.ident()?;
                let f = Func::parse(&name)
                    .ok_or_else(|| self.err(format!("unknown function `{name}`")))?;
                Ok(Expr::FuncRef(f))
            }
            Tok::Ident(name) if name == "attr" => {
                self.next();
                let required = if self.peek().tok == Tok::Bang {
                    self.next();
                    true
                } else {
                    false
                };
                self.expect(Tok::LParen)?;
                let category = self.category()?;
                self.expect(Tok::Comma)?;
                let attr_name = self.string()?;
                self.expect(Tok::RParen)?;
                let id = AttributeId::new(category, attr_name);
                Ok(if required {
                    Expr::attr_required(id)
                } else {
                    Expr::attr(id)
                })
            }
            Tok::Ident(name) if name == "bag" => {
                self.next();
                self.expect(Tok::LParen)?;
                let mut values = Vec::new();
                if self.peek().tok != Tok::RParen {
                    values.push(self.literal()?);
                    while self.peek().tok == Tok::Comma {
                        self.next();
                        values.push(self.literal()?);
                    }
                }
                self.expect(Tok::RParen)?;
                Ok(Expr::BagLiteral(values))
            }
            Tok::Ident(name)
                if Func::parse(&name).is_some()
                    && self.toks.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::LParen) =>
            {
                self.next();
                let f = Func::parse(&name).expect("checked");
                self.expect(Tok::LParen)?;
                let mut args = Vec::new();
                if self.peek().tok != Tok::RParen {
                    args.push(self.expr()?);
                    while self.peek().tok == Tok::Comma {
                        self.next();
                        args.push(self.expr()?);
                    }
                }
                self.expect(Tok::RParen)?;
                Ok(Expr::Apply { func: f, args })
            }
            _ => Ok(Expr::Value(self.literal()?)),
        }
    }

    fn effect(&mut self) -> Result<Effect, ParseError> {
        let name = self.ident()?;
        match name.as_str() {
            "permit" => Ok(Effect::Permit),
            "deny" => Ok(Effect::Deny),
            other => Err(self.err(format!("expected `permit` or `deny`, found `{other}`"))),
        }
    }

    fn obligation(&mut self) -> Result<ObligationExpr, ParseError> {
        self.expect_ident("obligation")?;
        let id = self.string()?;
        self.expect_ident("on")?;
        let fulfill_on = self.effect()?;
        self.expect(Tok::LBrace)?;
        let mut params = Vec::new();
        while self.peek().tok != Tok::RBrace {
            let name = self.string()?;
            self.expect(Tok::Assign)?;
            let e = self.expr()?;
            self.expect(Tok::Semi)?;
            params.push((name, e));
        }
        self.expect(Tok::RBrace)?;
        Ok(ObligationExpr {
            id,
            fulfill_on,
            params,
        })
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        self.expect_ident("rule")?;
        let id = self.string()?;
        let effect = self.effect()?;
        self.expect(Tok::LBrace)?;
        let mut rule = Rule::new(id, effect);
        while self.peek().tok != Tok::RBrace {
            if self.peek_ident("target") {
                rule.target = self.target()?;
            } else if self.peek_ident("condition") {
                self.next();
                rule.condition = Some(self.expr()?);
            } else if self.peek_ident("obligation") {
                rule.obligations.push(self.obligation()?);
            } else {
                return Err(self.err(format!(
                    "expected `target`, `condition` or `obligation`, found {}",
                    self.peek().tok
                )));
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(rule)
    }

    fn policy(&mut self) -> Result<Policy, ParseError> {
        self.expect_ident("policy")?;
        let id = self.string()?;
        let alg = self.combining()?;
        self.expect(Tok::LBrace)?;
        let mut policy = Policy::new(PolicyId::new(id), alg);
        while self.peek().tok != Tok::RBrace {
            if self.peek_ident("target") {
                policy.target = self.target()?;
            } else if self.peek_ident("rule") {
                policy.rules.push(self.rule()?);
            } else if self.peek_ident("obligation") {
                policy.obligations.push(self.obligation()?);
            } else if self.peek_ident("issuer") {
                self.next();
                policy.issuer = Some(self.string()?);
                self.expect(Tok::Semi)?;
            } else {
                return Err(self.err(format!(
                    "expected `target`, `rule`, `obligation` or `issuer`, found {}",
                    self.peek().tok
                )));
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(policy)
    }

    fn policy_set(&mut self) -> Result<PolicySet, ParseError> {
        self.expect_ident("policyset")?;
        let id = self.string()?;
        let alg = self.combining()?;
        self.expect(Tok::LBrace)?;
        let mut set = PolicySet::new(PolicyId::new(id), alg);
        while self.peek().tok != Tok::RBrace {
            if self.peek_ident("target") {
                set.target = self.target()?;
            } else if self.peek_ident("obligation") {
                set.obligations.push(self.obligation()?);
            } else if self.peek_ident("issuer") {
                self.next();
                set.issuer = Some(self.string()?);
                self.expect(Tok::Semi)?;
            } else if self.peek_ident("policyset") {
                // `policyset ref "x";` or inline nested set.
                if matches!(self.toks.get(self.pos + 1).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "ref")
                {
                    self.next();
                    self.next();
                    let rid = self.string()?;
                    self.expect(Tok::Semi)?;
                    set.elements
                        .push(PolicyElement::PolicySetRef(PolicyId::new(rid)));
                } else {
                    let nested = self.policy_set()?;
                    set.elements
                        .push(PolicyElement::PolicySet(Box::new(nested)));
                }
            } else if self.peek_ident("policy") {
                if matches!(self.toks.get(self.pos + 1).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "ref")
                {
                    self.next();
                    self.next();
                    let rid = self.string()?;
                    self.expect(Tok::Semi)?;
                    set.elements
                        .push(PolicyElement::PolicyRef(PolicyId::new(rid)));
                } else {
                    let p = self.policy()?;
                    set.elements.push(PolicyElement::Policy(p));
                }
            } else {
                return Err(self.err(format!("unexpected {} in policyset body", self.peek().tok)));
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(set)
    }
}

/// Parses a single policy from DSL text.
///
/// # Errors
///
/// Returns a [`ParseError`] with source position on malformed input.
pub fn parse_policy(input: &str) -> Result<Policy, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let policy = p.policy()?;
    p.expect(Tok::Eof)?;
    Ok(policy)
}

/// Parses a single policy set from DSL text.
///
/// # Errors
///
/// Returns a [`ParseError`] with source position on malformed input.
pub fn parse_policy_set(input: &str) -> Result<PolicySet, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let set = p.policy_set()?;
    p.expect(Tok::Eof)?;
    Ok(set)
}

/// Parses a standalone expression (useful in tests and tooling).
///
/// # Errors
///
/// Returns a [`ParseError`] with source position on malformed input.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

// -------------------------------------------------------------- printer --

fn print_value(v: &AttrValue, out: &mut String) {
    match v {
        AttrValue::String(s) => {
            let _ = write!(out, "{s:?}");
        }
        AttrValue::Integer(i) => {
            let _ = write!(out, "{i}");
        }
        AttrValue::Boolean(b) => {
            let _ = write!(out, "{b}");
        }
        AttrValue::Double(d) => {
            if d.fract() == 0.0 && d.is_finite() {
                let _ = write!(out, "{d:.1}");
            } else {
                let _ = write!(out, "{d}");
            }
        }
        AttrValue::Time(t) => {
            let _ = write!(out, "time({t})");
        }
    }
}

fn print_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Value(v) => print_value(v, out),
        Expr::BagLiteral(vs) => {
            out.push_str("bag(");
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_value(v, out);
            }
            out.push(')');
        }
        Expr::Attribute {
            id,
            must_be_present,
        } => {
            out.push_str("attr");
            if *must_be_present {
                out.push('!');
            }
            let _ = write!(out, "({}, {:?})", id.category, id.name);
        }
        Expr::Apply { func, args } => {
            out.push_str(func.name());
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(a, out);
            }
            out.push(')');
        }
        Expr::FuncRef(f) => {
            out.push('#');
            out.push_str(f.name());
        }
    }
}

fn print_match(m: &AttrMatch, out: &mut String) {
    let _ = write!(
        out,
        "{} {:?} {} ",
        m.attr.category,
        m.attr.name,
        m.op.symbol()
    );
    print_value(&m.value, out);
}

fn print_target(t: &Target, indent: &str, out: &mut String) {
    if t.is_match_all() {
        return;
    }
    let _ = writeln!(out, "{indent}target {{");
    let inner = format!("{indent}  ");
    for any in &t.any_ofs {
        let simple = any.all_ofs.len() == 1 && any.all_ofs[0].matches.len() == 1;
        if simple {
            out.push_str(&inner);
            print_match(&any.all_ofs[0].matches[0], out);
            out.push_str(";\n");
        } else {
            let _ = writeln!(out, "{inner}any {{");
            for all in &any.all_ofs {
                let _ = writeln!(out, "{inner}  all {{");
                for m in &all.matches {
                    let _ = write!(out, "{inner}    ");
                    print_match(m, out);
                    out.push_str(";\n");
                }
                let _ = writeln!(out, "{inner}  }}");
            }
            let _ = writeln!(out, "{inner}}}");
        }
    }
    let _ = writeln!(out, "{indent}}}");
}

fn print_obligation(o: &ObligationExpr, indent: &str, out: &mut String) {
    let _ = writeln!(out, "{indent}obligation {:?} on {} {{", o.id, o.fulfill_on);
    for (name, e) in &o.params {
        let _ = write!(out, "{indent}  {name:?} = ");
        print_expr(e, out);
        out.push_str(";\n");
    }
    let _ = writeln!(out, "{indent}}}");
}

fn print_rule(r: &Rule, indent: &str, out: &mut String) {
    let _ = writeln!(out, "{indent}rule {:?} {} {{", r.id, r.effect);
    let inner = format!("{indent}  ");
    print_target(&r.target, &inner, out);
    if let Some(c) = &r.condition {
        let _ = write!(out, "{inner}condition ");
        print_expr(c, out);
        out.push('\n');
    }
    for o in &r.obligations {
        print_obligation(o, &inner, out);
    }
    let _ = writeln!(out, "{indent}}}");
}

/// Pretty-prints a policy in DSL syntax (round-trips through
/// [`parse_policy`]).
pub fn print_policy(p: &Policy) -> String {
    let mut out = String::new();
    print_policy_indent(p, "", &mut out);
    out
}

fn print_policy_indent(p: &Policy, indent: &str, out: &mut String) {
    let _ = writeln!(out, "{indent}policy {:?} {} {{", p.id.0, p.rule_combining);
    let inner = format!("{indent}  ");
    if let Some(issuer) = &p.issuer {
        let _ = writeln!(out, "{inner}issuer {issuer:?};");
    }
    print_target(&p.target, &inner, out);
    for r in &p.rules {
        print_rule(r, &inner, out);
    }
    for o in &p.obligations {
        print_obligation(o, &inner, out);
    }
    let _ = writeln!(out, "{indent}}}");
}

/// Pretty-prints a policy set in DSL syntax (round-trips through
/// [`parse_policy_set`]).
pub fn print_policy_set(ps: &PolicySet) -> String {
    let mut out = String::new();
    print_policy_set_indent(ps, "", &mut out);
    out
}

fn print_policy_set_indent(ps: &PolicySet, indent: &str, out: &mut String) {
    let _ = writeln!(
        out,
        "{indent}policyset {:?} {} {{",
        ps.id.0, ps.policy_combining
    );
    let inner = format!("{indent}  ");
    if let Some(issuer) = &ps.issuer {
        let _ = writeln!(out, "{inner}issuer {issuer:?};");
    }
    print_target(&ps.target, &inner, out);
    for el in &ps.elements {
        match el {
            PolicyElement::Policy(p) => print_policy_indent(p, &inner, out),
            PolicyElement::PolicySet(nested) => print_policy_set_indent(nested, &inner, out),
            PolicyElement::PolicyRef(id) => {
                let _ = writeln!(out, "{inner}policy ref {:?};", id.0);
            }
            PolicyElement::PolicySetRef(id) => {
                let _ = writeln!(out, "{inner}policyset ref {:?};", id.0);
            }
        }
    }
    for o in &ps.obligations {
        print_obligation(o, &inner, out);
    }
    let _ = writeln!(out, "{indent}}}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{EmptyStore, Evaluator};
    use crate::policy::Decision;
    use crate::request::RequestContext;

    const DOCTORS: &str = r#"
// Doctors may read electronic health records during business hours.
policy "doctors-read" first-applicable {
  target {
    resource "id" ~= "ehr/*";
  }
  rule "permit-doctors" permit {
    target {
      subject "role" == "doctor";
      action "id" == "read";
    }
    condition lt(hour-of(attr!(env, "current-time")), 17)
    obligation "log" on permit {
      "subject" = attr(subject, "id");
    }
  }
  rule "default-deny" deny { }
}
"#;

    #[test]
    fn parses_and_evaluates() {
        let policy = parse_policy(DOCTORS).expect("parses");
        assert_eq!(policy.id.as_str(), "doctors-read");
        assert_eq!(policy.rules.len(), 2);

        let req = RequestContext::basic("alice", "ehr/1", "read")
            .with_subject_attr("role", "doctor")
            .with_env_attr("current-time", AttrValue::Time(9 * 3_600_000));
        let store = EmptyStore;
        let mut ev = Evaluator::new(&store, &req);
        let resp = ev.evaluate_policy(&policy);
        assert_eq!(resp.decision, Decision::Permit);
        assert_eq!(resp.obligations.len(), 1);
    }

    #[test]
    fn policy_roundtrip() {
        let policy = parse_policy(DOCTORS).expect("parses");
        let printed = print_policy(&policy);
        let reparsed = parse_policy(&printed).expect("printed output parses");
        assert_eq!(policy, reparsed, "printed:\n{printed}");
    }

    #[test]
    fn policy_set_with_refs_and_nesting() {
        let src = r#"
policyset "vo-root" only-one-applicable {
  target {
    env "vo" == "cancer-research";
  }
  policy "local" first-applicable {
    target { resource "id" ~= "local/*"; }
    rule "ok" permit { }
  }
  policyset "nested" deny-overrides {
    target { resource "id" ~= "shared/*"; }
    policy ref "shared-baseline";
  }
  policyset ref "partner-set";
  obligation "audit" on permit {
    "scope" = "vo";
  }
}
"#;
        let set = parse_policy_set(src).expect("parses");
        assert_eq!(set.elements.len(), 3);
        let printed = print_policy_set(&set);
        let reparsed = parse_policy_set(&printed).expect("roundtrip");
        assert_eq!(set, reparsed);
    }

    #[test]
    fn expression_forms() {
        let e = parse_expr(
            r#"and(is-in("doctor", attr(subject, "role")), ge(attr(subject, "age"), 18))"#,
        )
        .expect("parses");
        assert!(matches!(
            e,
            Expr::Apply {
                func: Func::And,
                ..
            }
        ));

        let e = parse_expr(r#"any-of(#eq, "doctor", attr(subject, "role"))"#).expect("parses");
        match e {
            Expr::Apply {
                func: Func::AnyOf,
                args,
            } => {
                assert_eq!(args[0], Expr::FuncRef(Func::Eq));
            }
            other => panic!("unexpected {other:?}"),
        }

        let e = parse_expr(r#"bag("a", "b", 3)"#).expect("parses");
        assert_eq!(
            e,
            Expr::BagLiteral(vec!["a".into(), "b".into(), AttrValue::Integer(3)])
        );

        let e = parse_expr("time(9000)").expect("parses");
        assert_eq!(e, Expr::Value(AttrValue::Time(9000)));

        let e = parse_expr("-42").expect("parses");
        assert_eq!(e, Expr::Value(AttrValue::Integer(-42)));

        let e = parse_expr("3.5").expect("parses");
        assert_eq!(e, Expr::Value(AttrValue::Double(3.5)));
    }

    #[test]
    fn target_any_all_form() {
        let src = r#"
policy "p" deny-overrides {
  target {
    any {
      all { subject "role" == "admin"; }
      all { subject "role" == "doctor"; action "id" == "read"; }
    }
    resource "type" == "ehr";
  }
  rule "ok" permit { }
}
"#;
        let p = parse_policy(src).expect("parses");
        assert_eq!(p.target.any_ofs.len(), 2);
        assert_eq!(p.target.any_ofs[0].all_ofs.len(), 2);
        let printed = print_policy(&p);
        assert_eq!(parse_policy(&printed).expect("roundtrip"), p);
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_policy("policy \"p\" bogus-alg { }").unwrap_err();
        assert!(err.message.contains("unknown combining algorithm"));
        assert_eq!(err.line, 1);

        let err =
            parse_policy("policy \"p\" deny-overrides {\n  rule 42 permit { }\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected string"));
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let p = parse_policy(
            "// header\npolicy \"p\" deny-overrides { // trailing\n rule \"r\" permit { } }",
        )
        .expect("parses");
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn unterminated_string_rejected() {
        let err = parse_policy("policy \"p").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn operators_in_targets() {
        let src = r#"
policy "ops" deny-overrides {
  rule "r" permit {
    target {
      subject "age" >= 18;
      subject "age" < 65;
      resource "path" contains "records";
    }
  }
}
"#;
        let p = parse_policy(src).expect("parses");
        let ops: Vec<_> = p.rules[0].target.all_matches().map(|m| m.op).collect();
        assert_eq!(
            ops,
            vec![
                MatchOp::GreaterOrEqual,
                MatchOp::LessThan,
                MatchOp::Contains
            ]
        );
        let printed = print_policy(&p);
        assert_eq!(parse_policy(&printed).expect("roundtrip"), p);
    }
}
