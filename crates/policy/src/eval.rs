//! The policy evaluation engine: turns a request context plus a policy
//! tree into an authorization decision with obligations — the core of a
//! Policy Decision Point (Fig. 3/4 of the paper).

use crate::combining::Combiner;
use crate::expr::{eval as eval_expr, Evaluated};
use crate::expr::{eval_condition, AttributeSource, EvalError, ExprStats};
use crate::policy::{
    CombiningAlg, Decision, Effect, Obligation, ObligationExpr, Policy, PolicyElement, PolicyId,
    PolicySet, Rule,
};
use crate::request::RequestContext;
use crate::target::{MatchResult, Target};
use std::collections::HashMap;
use std::sync::Arc;

/// Resolves policy references encountered during evaluation (the PAP's
/// repository implements this).
pub trait PolicyStore: Send + Sync {
    /// Looks up a policy by id.
    fn policy(&self, id: &PolicyId) -> Option<Arc<Policy>>;
    /// Looks up a policy set by id.
    fn policy_set(&self, id: &PolicyId) -> Option<Arc<PolicySet>>;
}

/// A store with no policies (for evaluating self-contained trees).
#[derive(Clone, Copy, Debug, Default)]
pub struct EmptyStore;

impl PolicyStore for EmptyStore {
    fn policy(&self, _id: &PolicyId) -> Option<Arc<Policy>> {
        None
    }
    fn policy_set(&self, _id: &PolicyId) -> Option<Arc<PolicySet>> {
        None
    }
}

/// Simple in-memory policy store keyed by id.
#[derive(Clone, Debug, Default)]
pub struct InMemoryStore {
    policies: HashMap<PolicyId, Arc<Policy>>,
    sets: HashMap<PolicyId, Arc<PolicySet>>,
}

impl InMemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a policy.
    pub fn add_policy(&mut self, policy: Policy) {
        self.policies.insert(policy.id.clone(), Arc::new(policy));
    }

    /// Inserts (or replaces) a policy set.
    pub fn add_policy_set(&mut self, set: PolicySet) {
        self.sets.insert(set.id.clone(), Arc::new(set));
    }

    /// Number of stored policies (not counting sets).
    pub fn policy_count(&self) -> usize {
        self.policies.len()
    }
}

impl PolicyStore for InMemoryStore {
    fn policy(&self, id: &PolicyId) -> Option<Arc<Policy>> {
        self.policies.get(id).cloned()
    }
    fn policy_set(&self, id: &PolicyId) -> Option<Arc<PolicySet>> {
        self.sets.get(id).cloned()
    }
}

/// Work counters for one evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalMetrics {
    /// Rules whose evaluation was reached.
    pub rules_evaluated: u64,
    /// Policies evaluated (target matched or not).
    pub policies_evaluated: u64,
    /// Policy sets evaluated.
    pub policy_sets_evaluated: u64,
    /// Target evaluations performed.
    pub targets_checked: u64,
    /// Expression work (functions, attribute lookups).
    pub expr: ExprStats,
}

impl EvalMetrics {
    /// Merges another metrics record into this one.
    pub fn absorb(&mut self, other: &EvalMetrics) {
        self.rules_evaluated += other.rules_evaluated;
        self.policies_evaluated += other.policies_evaluated;
        self.policy_sets_evaluated += other.policy_sets_evaluated;
        self.targets_checked += other.targets_checked;
        self.expr.functions_applied += other.expr.functions_applied;
        self.expr.attribute_lookups += other.expr.attribute_lookups;
    }
}

/// Evaluation status accompanying a decision.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Status {
    /// Evaluation completed normally.
    Ok,
    /// Evaluation hit an error; the message describes the first cause.
    Error(String),
}

impl Status {
    /// Whether the status is [`Status::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, Status::Ok)
    }
}

/// The authorization decision response returned to the PEP.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Response {
    /// The decision.
    pub decision: Decision,
    /// Obligations the PEP must fulfil.
    pub obligations: Vec<Obligation>,
    /// Evaluation status.
    pub status: Status,
}

impl Response {
    /// A plain decision with no obligations.
    pub fn decision(decision: Decision) -> Self {
        Response {
            decision,
            obligations: Vec::new(),
            status: Status::Ok,
        }
    }

    /// An Indeterminate response with an error message.
    pub fn indeterminate(msg: impl Into<String>) -> Self {
        Response {
            decision: Decision::Indeterminate,
            obligations: Vec::new(),
            status: Status::Error(msg.into()),
        }
    }
}

const MAX_POLICY_DEPTH: u32 = 64;

/// The evaluation engine.
///
/// Holds the request context (used for target matching), an attribute
/// source (used for conditions and obligations — typically the same
/// context, or a PIP-backed resolver) and a policy store for references.
pub struct Evaluator<'a> {
    store: &'a dyn PolicyStore,
    request: &'a RequestContext,
    source: &'a dyn AttributeSource,
    /// Work counters, accumulated across evaluations by this instance.
    pub metrics: EvalMetrics,
    depth: u32,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator where conditions read straight from the
    /// request context.
    pub fn new(store: &'a dyn PolicyStore, request: &'a RequestContext) -> Self {
        Evaluator {
            store,
            request,
            source: request,
            metrics: EvalMetrics::default(),
            depth: 0,
        }
    }

    /// Creates an evaluator with a separate attribute source (e.g. a
    /// PIP-backed resolver that falls back to the request).
    pub fn with_source(
        store: &'a dyn PolicyStore,
        request: &'a RequestContext,
        source: &'a dyn AttributeSource,
    ) -> Self {
        Evaluator {
            store,
            request,
            source,
            metrics: EvalMetrics::default(),
            depth: 0,
        }
    }

    /// Evaluates a policy element (the generic entry point).
    pub fn evaluate_element(&mut self, element: &PolicyElement) -> Response {
        if self.depth > MAX_POLICY_DEPTH {
            return Response::indeterminate("policy nesting depth exceeded");
        }
        match element {
            PolicyElement::Policy(p) => self.evaluate_policy(p),
            PolicyElement::PolicySet(ps) => self.evaluate_policy_set(ps),
            PolicyElement::PolicyRef(id) => match self.store.policy(id) {
                Some(p) => self.evaluate_policy(&p),
                None => Response::indeterminate(format!("unresolved policy reference {id}")),
            },
            PolicyElement::PolicySetRef(id) => match self.store.policy_set(id) {
                Some(ps) => self.evaluate_policy_set(&ps),
                None => Response::indeterminate(format!("unresolved policy set reference {id}")),
            },
        }
    }

    /// Evaluates a single policy.
    pub fn evaluate_policy(&mut self, policy: &Policy) -> Response {
        self.metrics.policies_evaluated += 1;
        match self.check_target(&policy.target) {
            MatchResult::NoMatch => return Response::decision(Decision::NotApplicable),
            MatchResult::Indeterminate => {
                return Response::indeterminate(format!("indeterminate target in {}", policy.id))
            }
            MatchResult::Match => {}
        }
        if policy.rule_combining == CombiningAlg::OnlyOneApplicable {
            return Response::indeterminate(format!(
                "only-one-applicable is not a rule-combining algorithm (policy {})",
                policy.id
            ));
        }
        let mut combiner = Combiner::new(policy.rule_combining);
        let mut first_error: Option<String> = None;
        for rule in &policy.rules {
            let (d, obs, err) = self.evaluate_rule(rule);
            if first_error.is_none() {
                first_error = err;
            }
            if combiner.feed(d, obs) {
                break;
            }
        }
        let (decision, mut obligations) = combiner.finish();
        if let Err(resp) =
            self.attach_own_obligations(&policy.obligations, decision, &mut obligations, &policy.id)
        {
            return resp;
        }
        Response {
            decision,
            obligations,
            status: indeterminate_status(decision, first_error),
        }
    }

    /// Evaluates a policy set.
    pub fn evaluate_policy_set(&mut self, set: &PolicySet) -> Response {
        self.metrics.policy_sets_evaluated += 1;
        match self.check_target(&set.target) {
            MatchResult::NoMatch => return Response::decision(Decision::NotApplicable),
            MatchResult::Indeterminate => {
                return Response::indeterminate(format!("indeterminate target in {}", set.id))
            }
            MatchResult::Match => {}
        }
        self.depth += 1;
        let mut resp = if set.policy_combining == CombiningAlg::OnlyOneApplicable {
            self.evaluate_only_one_applicable(set)
        } else {
            let mut combiner = Combiner::new(set.policy_combining);
            let mut first_error: Option<String> = None;
            for element in &set.elements {
                let child = self.evaluate_element(element);
                if first_error.is_none() {
                    if let Status::Error(e) = &child.status {
                        first_error = Some(e.clone());
                    }
                }
                if combiner.feed(child.decision, child.obligations) {
                    break;
                }
            }
            let (decision, obligations) = combiner.finish();
            Response {
                decision,
                obligations,
                status: indeterminate_status(decision, first_error),
            }
        };
        self.depth -= 1;

        let mut obligations = std::mem::take(&mut resp.obligations);
        if let Err(err_resp) =
            self.attach_own_obligations(&set.obligations, resp.decision, &mut obligations, &set.id)
        {
            return err_resp;
        }
        resp.obligations = obligations;
        resp
    }

    fn evaluate_only_one_applicable(&mut self, set: &PolicySet) -> Response {
        let mut applicable: Option<usize> = None;
        for (i, element) in set.elements.iter().enumerate() {
            let target = match self.element_target(element) {
                Ok(t) => t,
                Err(msg) => return Response::indeterminate(msg),
            };
            self.metrics.targets_checked += 1;
            match target.evaluate(self.request) {
                MatchResult::Match => {
                    if applicable.is_some() {
                        return Response::indeterminate(format!(
                            "more than one applicable child in {}",
                            set.id
                        ));
                    }
                    applicable = Some(i);
                }
                MatchResult::NoMatch => {}
                MatchResult::Indeterminate => {
                    return Response::indeterminate(format!(
                        "indeterminate child target in {}",
                        set.id
                    ))
                }
            }
        }
        match applicable {
            Some(i) => self.evaluate_element(&set.elements[i]),
            None => Response::decision(Decision::NotApplicable),
        }
    }

    fn element_target(&self, element: &PolicyElement) -> Result<Target, String> {
        match element {
            PolicyElement::Policy(p) => Ok(p.target.clone()),
            PolicyElement::PolicySet(ps) => Ok(ps.target.clone()),
            PolicyElement::PolicyRef(id) => self
                .store
                .policy(id)
                .map(|p| p.target.clone())
                .ok_or_else(|| format!("unresolved policy reference {id}")),
            PolicyElement::PolicySetRef(id) => self
                .store
                .policy_set(id)
                .map(|ps| ps.target.clone())
                .ok_or_else(|| format!("unresolved policy set reference {id}")),
        }
    }

    fn evaluate_rule(&mut self, rule: &Rule) -> (Decision, Vec<Obligation>, Option<String>) {
        self.metrics.rules_evaluated += 1;
        match self.check_target(&rule.target) {
            MatchResult::NoMatch => return (Decision::NotApplicable, Vec::new(), None),
            MatchResult::Indeterminate => {
                return (
                    Decision::Indeterminate,
                    Vec::new(),
                    Some(format!("indeterminate target in rule {}", rule.id)),
                )
            }
            MatchResult::Match => {}
        }
        if let Some(condition) = &rule.condition {
            match eval_condition(condition, self.source, &mut self.metrics.expr) {
                Ok(true) => {}
                Ok(false) => return (Decision::NotApplicable, Vec::new(), None),
                Err(e) => {
                    return (
                        Decision::Indeterminate,
                        Vec::new(),
                        Some(format!("condition error in rule {}: {e}", rule.id)),
                    )
                }
            }
        }
        let decision = Decision::from_effect(rule.effect);
        match self.instantiate_obligations(&rule.obligations, rule.effect) {
            Ok(obs) => (decision, obs, None),
            Err(e) => (
                Decision::Indeterminate,
                Vec::new(),
                Some(format!("obligation error in rule {}: {e}", rule.id)),
            ),
        }
    }

    fn check_target(&mut self, target: &Target) -> MatchResult {
        self.metrics.targets_checked += 1;
        target.evaluate(self.request)
    }

    fn instantiate_obligations(
        &mut self,
        templates: &[ObligationExpr],
        effect: Effect,
    ) -> Result<Vec<Obligation>, EvalError> {
        let mut out = Vec::new();
        for t in templates {
            if t.fulfill_on != effect {
                continue;
            }
            let mut params = Vec::with_capacity(t.params.len());
            for (name, expr) in &t.params {
                let v = match eval_expr(expr, self.source, &mut self.metrics.expr)? {
                    Evaluated::Scalar(v) => v,
                    Evaluated::Bag(mut bag) => {
                        if bag.len() == 1 {
                            bag.pop().expect("len checked")
                        } else {
                            return Err(EvalError::NotSingleton { size: bag.len() });
                        }
                    }
                    Evaluated::Function(_) => return Err(EvalError::NotAFunction),
                };
                params.push((name.clone(), v));
            }
            out.push(Obligation {
                id: t.id.clone(),
                params,
            });
        }
        Ok(out)
    }

    fn attach_own_obligations(
        &mut self,
        templates: &[ObligationExpr],
        decision: Decision,
        obligations: &mut Vec<Obligation>,
        id: &PolicyId,
    ) -> Result<(), Response> {
        let effect = match decision {
            Decision::Permit => Effect::Permit,
            Decision::Deny => Effect::Deny,
            _ => return Ok(()),
        };
        match self.instantiate_obligations(templates, effect) {
            Ok(own) => {
                obligations.extend(own);
                Ok(())
            }
            Err(e) => Err(Response::indeterminate(format!(
                "obligation error in {id}: {e}"
            ))),
        }
    }
}

fn indeterminate_status(decision: Decision, first_error: Option<String>) -> Status {
    if decision == Decision::Indeterminate {
        Status::Error(first_error.unwrap_or_else(|| "indeterminate combination".into()))
    } else {
        Status::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AttrValue, AttributeId};
    use crate::expr::{Expr, Func};
    use crate::target::AttrMatch;

    fn doctor_request() -> RequestContext {
        RequestContext::basic("alice", "ehr/records/42", "read")
            .with_subject_attr("role", "doctor")
            .with_env_attr("current-time", AttrValue::Time(9 * 3_600_000))
    }

    fn doctors_read_policy() -> Policy {
        Policy::new("doctors-read", CombiningAlg::FirstApplicable)
            .with_target(Target::all(vec![AttrMatch::glob(
                AttributeId::resource("id"),
                "ehr/*",
            )]))
            .with_rule(
                Rule::new("permit-doctors", Effect::Permit)
                    .with_target(Target::all(vec![
                        AttrMatch::equals(AttributeId::subject("role"), "doctor"),
                        AttrMatch::equals(AttributeId::action("id"), "read"),
                    ]))
                    .with_obligation(
                        ObligationExpr::new("log", Effect::Permit)
                            .with_param("subject", Expr::attr(AttributeId::subject("id"))),
                    ),
            )
            .with_rule(Rule::new("default-deny", Effect::Deny))
    }

    #[test]
    fn permit_path_with_obligation() {
        let req = doctor_request();
        let store = EmptyStore;
        let mut ev = Evaluator::new(&store, &req);
        let resp = ev.evaluate_policy(&doctors_read_policy());
        assert_eq!(resp.decision, Decision::Permit);
        assert_eq!(resp.obligations.len(), 1);
        assert_eq!(resp.obligations[0].id, "log");
        assert_eq!(
            resp.obligations[0].param("subject"),
            Some(&AttrValue::from("alice"))
        );
        assert!(resp.status.is_ok());
        assert_eq!(ev.metrics.policies_evaluated, 1);
        assert!(ev.metrics.rules_evaluated >= 1);
    }

    #[test]
    fn deny_path_when_role_missing() {
        let req = RequestContext::basic("mallory", "ehr/records/42", "read");
        let store = EmptyStore;
        let mut ev = Evaluator::new(&store, &req);
        let resp = ev.evaluate_policy(&doctors_read_policy());
        assert_eq!(resp.decision, Decision::Deny);
        assert!(resp.obligations.is_empty());
    }

    #[test]
    fn not_applicable_outside_target() {
        let req = RequestContext::basic("alice", "lab/results/7", "read");
        let store = EmptyStore;
        let mut ev = Evaluator::new(&store, &req);
        let resp = ev.evaluate_policy(&doctors_read_policy());
        assert_eq!(resp.decision, Decision::NotApplicable);
    }

    #[test]
    fn condition_gates_rule() {
        let policy = Policy::new("hours", CombiningAlg::DenyUnlessPermit).with_rule(
            Rule::new("business-hours", Effect::Permit).with_condition(Expr::apply(
                Func::Lt,
                vec![
                    Expr::apply(
                        Func::HourOf,
                        vec![Expr::attr_required(AttributeId::environment(
                            "current-time",
                        ))],
                    ),
                    Expr::val(17i64),
                ],
            )),
        );
        let store = EmptyStore;

        let morning = doctor_request();
        let mut ev = Evaluator::new(&store, &morning);
        assert_eq!(ev.evaluate_policy(&policy).decision, Decision::Permit);

        let night = RequestContext::basic("alice", "ehr/1", "read")
            .with_env_attr("current-time", AttrValue::Time(22 * 3_600_000));
        let mut ev = Evaluator::new(&store, &night);
        assert_eq!(ev.evaluate_policy(&policy).decision, Decision::Deny);
    }

    #[test]
    fn missing_required_attribute_is_indeterminate_then_failsafe() {
        let policy = Policy::new("needs-time", CombiningAlg::DenyOverrides).with_rule(
            Rule::new("r", Effect::Permit).with_condition(Expr::apply(
                Func::Lt,
                vec![
                    Expr::apply(
                        Func::HourOf,
                        vec![Expr::attr_required(AttributeId::environment(
                            "current-time",
                        ))],
                    ),
                    Expr::val(17i64),
                ],
            )),
        );
        let req = RequestContext::basic("alice", "ehr/1", "read"); // no time
        let store = EmptyStore;
        let mut ev = Evaluator::new(&store, &req);
        let resp = ev.evaluate_policy(&policy);
        assert_eq!(resp.decision, Decision::Indeterminate);
        assert!(matches!(resp.status, Status::Error(_)));
    }

    #[test]
    fn policy_set_combines_children() {
        let ps = PolicySet::new("root", CombiningAlg::DenyOverrides)
            .with_policy(doctors_read_policy())
            .with_policy(
                Policy::new("lockdown", CombiningAlg::DenyOverrides).with_rule(
                    Rule::new("deny-writes", Effect::Deny).with_target(Target::all(vec![
                        AttrMatch::equals(AttributeId::action("id"), "write"),
                    ])),
                ),
            );
        let store = EmptyStore;
        let req = doctor_request();
        let mut ev = Evaluator::new(&store, &req);
        let resp = ev.evaluate_policy_set(&ps);
        assert_eq!(resp.decision, Decision::Permit);
        assert_eq!(resp.obligations.len(), 1);
    }

    #[test]
    fn policy_reference_resolution() {
        let mut store = InMemoryStore::new();
        store.add_policy(doctors_read_policy());
        let ps =
            PolicySet::new("root", CombiningAlg::FirstApplicable).with_policy_ref("doctors-read");
        let req = doctor_request();
        let mut ev = Evaluator::new(&store, &req);
        assert_eq!(ev.evaluate_policy_set(&ps).decision, Decision::Permit);
    }

    #[test]
    fn broken_reference_is_indeterminate() {
        let store = EmptyStore;
        let ps =
            PolicySet::new("root", CombiningAlg::FirstApplicable).with_policy_ref("no-such-policy");
        let req = doctor_request();
        let mut ev = Evaluator::new(&store, &req);
        let resp = ev.evaluate_policy_set(&ps);
        assert_eq!(resp.decision, Decision::Indeterminate);
    }

    #[test]
    fn only_one_applicable_selects_unique_child() {
        let ehr = Policy::new("ehr-policy", CombiningAlg::DenyUnlessPermit)
            .with_target(Target::all(vec![AttrMatch::glob(
                AttributeId::resource("id"),
                "ehr/*",
            )]))
            .with_rule(Rule::new("ok", Effect::Permit));
        let lab = Policy::new("lab-policy", CombiningAlg::DenyUnlessPermit)
            .with_target(Target::all(vec![AttrMatch::glob(
                AttributeId::resource("id"),
                "lab/*",
            )]))
            .with_rule(Rule::new("ok", Effect::Permit));
        let ps = PolicySet::new("root", CombiningAlg::OnlyOneApplicable)
            .with_policy(ehr)
            .with_policy(lab);
        let store = EmptyStore;

        let req = doctor_request(); // ehr/*
        let mut ev = Evaluator::new(&store, &req);
        assert_eq!(ev.evaluate_policy_set(&ps).decision, Decision::Permit);

        let req = RequestContext::basic("alice", "hr/files/1", "read");
        let mut ev = Evaluator::new(&store, &req);
        assert_eq!(
            ev.evaluate_policy_set(&ps).decision,
            Decision::NotApplicable
        );
    }

    #[test]
    fn only_one_applicable_rejects_overlap() {
        let a = Policy::new("a", CombiningAlg::DenyUnlessPermit)
            .with_rule(Rule::new("ok", Effect::Permit));
        let b = Policy::new("b", CombiningAlg::DenyUnlessPermit)
            .with_rule(Rule::new("ok", Effect::Permit));
        // Both have match-all targets.
        let ps = PolicySet::new("root", CombiningAlg::OnlyOneApplicable)
            .with_policy(a)
            .with_policy(b);
        let store = EmptyStore;
        let req = doctor_request();
        let mut ev = Evaluator::new(&store, &req);
        let resp = ev.evaluate_policy_set(&ps);
        assert_eq!(resp.decision, Decision::Indeterminate);
    }

    #[test]
    fn nested_policy_sets() {
        let inner =
            PolicySet::new("inner", CombiningAlg::DenyOverrides).with_policy(doctors_read_policy());
        let outer = PolicySet::new("outer", CombiningAlg::FirstApplicable).with_policy_set(inner);
        let store = EmptyStore;
        let req = doctor_request();
        let mut ev = Evaluator::new(&store, &req);
        assert_eq!(ev.evaluate_policy_set(&outer).decision, Decision::Permit);
        assert_eq!(ev.metrics.policy_sets_evaluated, 2);
    }

    #[test]
    fn set_level_obligations_added() {
        let ps = PolicySet::new("root", CombiningAlg::DenyOverrides)
            .with_policy(doctors_read_policy())
            .with_obligation(
                ObligationExpr::new("audit", Effect::Permit)
                    .with_param("scope", Expr::val("vo-wide")),
            );
        let store = EmptyStore;
        let req = doctor_request();
        let mut ev = Evaluator::new(&store, &req);
        let resp = ev.evaluate_policy_set(&ps);
        assert_eq!(resp.decision, Decision::Permit);
        let ids: Vec<_> = resp.obligations.iter().map(|o| o.id.as_str()).collect();
        assert!(ids.contains(&"log"));
        assert!(ids.contains(&"audit"));
    }

    #[test]
    fn obligation_evaluation_error_is_indeterminate() {
        let policy = Policy::new("p", CombiningAlg::DenyUnlessPermit)
            .with_rule(Rule::new("ok", Effect::Permit))
            .with_obligation(ObligationExpr::new("log", Effect::Permit).with_param(
                "who",
                Expr::attr_required(AttributeId::subject("nonexistent")),
            ));
        let store = EmptyStore;
        let req = doctor_request();
        let mut ev = Evaluator::new(&store, &req);
        let resp = ev.evaluate_policy(&policy);
        assert_eq!(resp.decision, Decision::Indeterminate);
    }

    #[test]
    fn metrics_accumulate() {
        let store = EmptyStore;
        let req = doctor_request();
        let mut ev = Evaluator::new(&store, &req);
        let p = doctors_read_policy();
        ev.evaluate_policy(&p);
        ev.evaluate_policy(&p);
        assert_eq!(ev.metrics.policies_evaluated, 2);
    }

    #[test]
    fn first_applicable_rule_order_matters() {
        let policy = Policy::new("ordered", CombiningAlg::FirstApplicable)
            .with_rule(
                Rule::new("deny-night", Effect::Deny).with_condition(Expr::apply(
                    Func::Ge,
                    vec![
                        Expr::apply(
                            Func::HourOf,
                            vec![Expr::attr_required(AttributeId::environment(
                                "current-time",
                            ))],
                        ),
                        Expr::val(17i64),
                    ],
                )),
            )
            .with_rule(Rule::new("permit-rest", Effect::Permit));
        let store = EmptyStore;
        let morning = doctor_request();
        let mut ev = Evaluator::new(&store, &morning);
        assert_eq!(ev.evaluate_policy(&policy).decision, Decision::Permit);
        let night = RequestContext::basic("a", "r", "x")
            .with_env_attr("current-time", AttrValue::Time(20 * 3_600_000));
        let mut ev = Evaluator::new(&store, &night);
        assert_eq!(ev.evaluate_policy(&policy).decision, Decision::Deny);
    }
}
