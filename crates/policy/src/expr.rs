//! The condition expression language: a typed expression tree evaluated
//! against an attribute source, mirroring XACML's `<Condition>` and its
//! function library.
//!
//! Evaluation is strict about types (a type error yields an
//! [`EvalError`], which the engine maps to `Indeterminate`), but
//! ergonomic about bags: where a scalar is expected and a singleton bag
//! is supplied, the single element is used (XACML's `one-and-only`
//! applied implicitly).

use crate::attr::{AttrValue, AttributeId};
use crate::glob::glob_match;
use crate::request::RequestContext;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Anything that can answer attribute lookups during evaluation.
///
/// [`RequestContext`] implements this directly; the PDP wraps it with
/// PIP-backed resolution.
pub trait AttributeSource {
    /// Returns the bag of values for `id`, or `None` if the attribute is
    /// unknown to this source.
    fn attribute_bag(&self, id: &AttributeId) -> Option<Vec<AttrValue>>;
}

impl AttributeSource for RequestContext {
    fn attribute_bag(&self, id: &AttributeId) -> Option<Vec<AttrValue>> {
        if self.contains(id) {
            Some(self.bag(id).to_vec())
        } else {
            None
        }
    }
}

/// The function library (a pragmatic subset of XACML's, plus time
/// helpers the paper's scenarios need).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Func {
    // Equality and ordering (same-type).
    /// `eq(a, b)` — type-strict equality.
    Eq,
    /// `ne(a, b)` — negated equality.
    Ne,
    /// `lt(a, b)` — less-than on ordered values of the same type.
    Lt,
    /// `le(a, b)` — less-or-equal.
    Le,
    /// `gt(a, b)` — greater-than.
    Gt,
    /// `ge(a, b)` — greater-or-equal.
    Ge,
    // Arithmetic (integer or double; mixed types are an error).
    /// `add(a, b, ...)` — sum.
    Add,
    /// `sub(a, b)` — difference.
    Sub,
    /// `mul(a, b, ...)` — product.
    Mul,
    /// `div(a, b)` — quotient; division by zero is an error.
    Div,
    /// `mod(a, b)` — integer remainder.
    Mod,
    // Boolean connectives.
    /// `and(...)` — logical conjunction, short-circuit left to right.
    And,
    /// `or(...)` — logical disjunction, short-circuit left to right.
    Or,
    /// `not(a)` — negation.
    Not,
    // Strings.
    /// `string-contains(haystack, needle)`.
    StringContains,
    /// `starts-with(s, prefix)`.
    StartsWith,
    /// `ends-with(s, suffix)`.
    EndsWith,
    /// `concat(...)` — string concatenation.
    Concat,
    /// `lower(s)` — ASCII lowercase.
    Lower,
    /// `upper(s)` — ASCII uppercase.
    Upper,
    /// `string-length(s)`.
    StringLength,
    /// `glob-match(pattern, s)` — `*`/`?` wildcard match.
    GlobMatch,
    // Bags.
    /// `one-and-only(bag)` — the single element of a singleton bag.
    OneAndOnly,
    /// `bag-size(bag)`.
    BagSize,
    /// `is-in(value, bag)`.
    IsIn,
    /// `union(bag, bag)` — set union (deduplicated).
    Union,
    /// `intersection(bag, bag)` — set intersection.
    Intersection,
    /// `subset(a, b)` — is every element of `a` in `b`?
    Subset,
    /// `set-equals(a, b)` — equal as sets.
    SetEquals,
    // Higher-order.
    /// `any-of(f, a, bag)` — ∃x∈bag. f(a, x).
    AnyOf,
    /// `all-of(f, a, bag)` — ∀x∈bag. f(a, x).
    AllOf,
    /// `any-of-any(f, bag, bag)` — ∃a∈A ∃b∈B. f(a, b).
    AnyOfAny,
    // Time.
    /// `hour-of(t)` — hour of day (0–23) of a time value.
    HourOf,
    /// `day-of(t)` — whole days since epoch.
    DayOf,
    /// `time-in-range(t, lo, hi)` — `lo <= t < hi`.
    TimeInRange,
    /// `time-add(t, ms)` — shift a time by a signed integer.
    TimeAdd,
    // Conversions.
    /// `int-to-double(i)`.
    IntToDouble,
    /// `to-string(v)` — display form of any value.
    ToString,
}

impl Func {
    /// DSL name of the function.
    pub fn name(&self) -> &'static str {
        use Func::*;
        match self {
            Eq => "eq",
            Ne => "ne",
            Lt => "lt",
            Le => "le",
            Gt => "gt",
            Ge => "ge",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Mod => "mod",
            And => "and",
            Or => "or",
            Not => "not",
            StringContains => "string-contains",
            StartsWith => "starts-with",
            EndsWith => "ends-with",
            Concat => "concat",
            Lower => "lower",
            Upper => "upper",
            StringLength => "string-length",
            GlobMatch => "glob-match",
            OneAndOnly => "one-and-only",
            BagSize => "bag-size",
            IsIn => "is-in",
            Union => "union",
            Intersection => "intersection",
            Subset => "subset",
            SetEquals => "set-equals",
            AnyOf => "any-of",
            AllOf => "all-of",
            AnyOfAny => "any-of-any",
            HourOf => "hour-of",
            DayOf => "day-of",
            TimeInRange => "time-in-range",
            TimeAdd => "time-add",
            IntToDouble => "int-to-double",
            ToString => "to-string",
        }
    }

    /// Parses a DSL function name.
    pub fn parse(s: &str) -> Option<Func> {
        use Func::*;
        Some(match s {
            "eq" => Eq,
            "ne" => Ne,
            "lt" => Lt,
            "le" => Le,
            "gt" => Gt,
            "ge" => Ge,
            "add" => Add,
            "sub" => Sub,
            "mul" => Mul,
            "div" => Div,
            "mod" => Mod,
            "and" => And,
            "or" => Or,
            "not" => Not,
            "string-contains" => StringContains,
            "starts-with" => StartsWith,
            "ends-with" => EndsWith,
            "concat" => Concat,
            "lower" => Lower,
            "upper" => Upper,
            "string-length" => StringLength,
            "glob-match" => GlobMatch,
            "one-and-only" => OneAndOnly,
            "bag-size" => BagSize,
            "is-in" => IsIn,
            "union" => Union,
            "intersection" => Intersection,
            "subset" => Subset,
            "set-equals" => SetEquals,
            "any-of" => AnyOf,
            "all-of" => AllOf,
            "any-of-any" => AnyOfAny,
            "hour-of" => HourOf,
            "day-of" => DayOf,
            "time-in-range" => TimeInRange,
            "time-add" => TimeAdd,
            "int-to-double" => IntToDouble,
            "to-string" => ToString,
            _ => return None,
        })
    }
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A condition expression.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Expr {
    /// A literal scalar value.
    Value(AttrValue),
    /// A literal bag of values.
    BagLiteral(Vec<AttrValue>),
    /// A reference to a request/PIP attribute bag.
    Attribute {
        /// The attribute to look up.
        id: AttributeId,
        /// If `true`, absence of the attribute is an evaluation error
        /// (→ Indeterminate); if `false`, absence yields an empty bag.
        must_be_present: bool,
    },
    /// Function application.
    Apply {
        /// The function to apply.
        func: Func,
        /// Argument expressions, evaluated left to right.
        args: Vec<Expr>,
    },
    /// A function reference — only meaningful as the first argument of a
    /// higher-order function.
    FuncRef(Func),
}

impl Expr {
    /// Literal value shorthand.
    pub fn val(v: impl Into<AttrValue>) -> Expr {
        Expr::Value(v.into())
    }

    /// Optional attribute reference shorthand.
    pub fn attr(id: AttributeId) -> Expr {
        Expr::Attribute {
            id,
            must_be_present: false,
        }
    }

    /// Required attribute reference shorthand.
    pub fn attr_required(id: AttributeId) -> Expr {
        Expr::Attribute {
            id,
            must_be_present: true,
        }
    }

    /// Function application shorthand.
    pub fn apply(func: Func, args: Vec<Expr>) -> Expr {
        Expr::Apply { func, args }
    }

    /// `eq(a, b)` shorthand.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::apply(Func::Eq, vec![a, b])
    }

    /// `and(...)` shorthand.
    pub fn and(args: Vec<Expr>) -> Expr {
        Expr::apply(Func::And, args)
    }

    /// `or(...)` shorthand.
    pub fn or(args: Vec<Expr>) -> Expr {
        Expr::apply(Func::Or, args)
    }

    /// `not(a)` shorthand.
    pub fn negate(a: Expr) -> Expr {
        Expr::apply(Func::Not, vec![a])
    }

    /// Number of nodes in the expression tree (complexity metric).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Value(_) | Expr::BagLiteral(_) | Expr::Attribute { .. } | Expr::FuncRef(_) => 1,
            Expr::Apply { args, .. } => 1 + args.iter().map(Expr::node_count).sum::<usize>(),
        }
    }
}

/// Evaluation failure; the engine maps these to `Indeterminate`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A `must_be_present` attribute was absent.
    MissingAttribute(AttributeId),
    /// A function received a value of the wrong type.
    TypeMismatch {
        /// The function that failed.
        func: Func,
        /// Description of what was expected.
        expected: &'static str,
        /// Type name actually found.
        found: &'static str,
    },
    /// A function received the wrong number of arguments.
    WrongArity {
        /// The function that failed.
        func: Func,
        /// Arity expected (description).
        expected: &'static str,
        /// Arity found.
        found: usize,
    },
    /// `one-and-only` (explicit or implicit) on a non-singleton bag.
    NotSingleton {
        /// Size of the offending bag.
        size: usize,
    },
    /// Integer/double division by zero.
    DivideByZero,
    /// Integer overflow in arithmetic.
    Overflow,
    /// A higher-order function's first argument was not a function
    /// reference.
    NotAFunction,
    /// Expression nesting exceeded the evaluation depth limit.
    DepthExceeded,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingAttribute(id) => write!(f, "missing required attribute {id}"),
            EvalError::TypeMismatch {
                func,
                expected,
                found,
            } => write!(f, "{func}: expected {expected}, found {found}"),
            EvalError::WrongArity {
                func,
                expected,
                found,
            } => write!(f, "{func}: expected {expected} arguments, found {found}"),
            EvalError::NotSingleton { size } => {
                write!(f, "expected singleton bag, found {size} values")
            }
            EvalError::DivideByZero => write!(f, "division by zero"),
            EvalError::Overflow => write!(f, "integer overflow"),
            EvalError::NotAFunction => write!(f, "higher-order argument is not a function"),
            EvalError::DepthExceeded => write!(f, "expression depth limit exceeded"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Result of evaluating an expression node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Evaluated {
    /// A single value.
    Scalar(AttrValue),
    /// A bag of values.
    Bag(Vec<AttrValue>),
    /// A function reference (higher-order argument position only).
    Function(Func),
}

/// Counters accumulated during expression evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExprStats {
    /// Number of function applications performed.
    pub functions_applied: u64,
    /// Number of attribute bag lookups performed.
    pub attribute_lookups: u64,
}

const MAX_DEPTH: u32 = 64;

/// Evaluates `expr` against `src`, accumulating counters into `stats`.
///
/// # Errors
///
/// Any [`EvalError`]; the policy engine maps these to `Indeterminate`.
pub fn eval(
    expr: &Expr,
    src: &dyn AttributeSource,
    stats: &mut ExprStats,
) -> Result<Evaluated, EvalError> {
    eval_depth(expr, src, stats, 0)
}

/// Evaluates a condition expression, requiring a boolean scalar result.
///
/// # Errors
///
/// [`EvalError::TypeMismatch`] if the expression does not produce a
/// boolean, plus any error from evaluation itself.
pub fn eval_condition(
    expr: &Expr,
    src: &dyn AttributeSource,
    stats: &mut ExprStats,
) -> Result<bool, EvalError> {
    match eval(expr, src, stats)? {
        Evaluated::Scalar(AttrValue::Boolean(b)) => Ok(b),
        Evaluated::Scalar(v) => Err(EvalError::TypeMismatch {
            func: Func::And,
            expected: "boolean condition",
            found: v.type_name(),
        }),
        Evaluated::Bag(_) => Err(EvalError::TypeMismatch {
            func: Func::And,
            expected: "boolean condition",
            found: "bag",
        }),
        Evaluated::Function(_) => Err(EvalError::NotAFunction),
    }
}

fn eval_depth(
    expr: &Expr,
    src: &dyn AttributeSource,
    stats: &mut ExprStats,
    depth: u32,
) -> Result<Evaluated, EvalError> {
    if depth > MAX_DEPTH {
        return Err(EvalError::DepthExceeded);
    }
    match expr {
        Expr::Value(v) => Ok(Evaluated::Scalar(v.clone())),
        Expr::BagLiteral(vs) => Ok(Evaluated::Bag(vs.clone())),
        Expr::FuncRef(f) => Ok(Evaluated::Function(*f)),
        Expr::Attribute {
            id,
            must_be_present,
        } => {
            stats.attribute_lookups += 1;
            match src.attribute_bag(id) {
                Some(bag) => Ok(Evaluated::Bag(bag)),
                None if *must_be_present => Err(EvalError::MissingAttribute(id.clone())),
                None => Ok(Evaluated::Bag(Vec::new())),
            }
        }
        Expr::Apply { func, args } => {
            stats.functions_applied += 1;
            apply(*func, args, src, stats, depth)
        }
    }
}

fn as_scalar(ev: Evaluated) -> Result<AttrValue, EvalError> {
    match ev {
        Evaluated::Scalar(v) => Ok(v),
        Evaluated::Bag(mut bag) => {
            if bag.len() == 1 {
                Ok(bag.pop().expect("len checked"))
            } else {
                Err(EvalError::NotSingleton { size: bag.len() })
            }
        }
        Evaluated::Function(_) => Err(EvalError::NotAFunction),
    }
}

fn as_bag(ev: Evaluated) -> Result<Vec<AttrValue>, EvalError> {
    match ev {
        Evaluated::Bag(bag) => Ok(bag),
        Evaluated::Scalar(v) => Ok(vec![v]),
        Evaluated::Function(_) => Err(EvalError::NotAFunction),
    }
}

fn as_bool(func: Func, v: AttrValue) -> Result<bool, EvalError> {
    v.as_boolean().ok_or(EvalError::TypeMismatch {
        func,
        expected: "boolean",
        found: "non-boolean",
    })
}

fn as_string(func: Func, v: AttrValue) -> Result<String, EvalError> {
    match v {
        AttrValue::String(s) => Ok(s),
        other => Err(EvalError::TypeMismatch {
            func,
            expected: "string",
            found: other.type_name(),
        }),
    }
}

fn as_int(func: Func, v: &AttrValue) -> Result<i64, EvalError> {
    v.as_integer().ok_or(EvalError::TypeMismatch {
        func,
        expected: "integer",
        found: v.type_name(),
    })
}

fn as_time(func: Func, v: &AttrValue) -> Result<u64, EvalError> {
    v.as_time().ok_or(EvalError::TypeMismatch {
        func,
        expected: "time",
        found: v.type_name(),
    })
}

fn need_args(func: Func, args: &[Expr], n: usize, desc: &'static str) -> Result<(), EvalError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(EvalError::WrongArity {
            func,
            expected: desc,
            found: args.len(),
        })
    }
}

/// Applies a binary primitive function to two scalars (used directly and
/// by the higher-order combinators).
fn apply_binary_scalar(func: Func, a: AttrValue, b: AttrValue) -> Result<AttrValue, EvalError> {
    use AttrValue as V;
    use Func::*;
    let out = match func {
        Eq => V::Boolean(a == b),
        Ne => V::Boolean(a != b),
        Lt | Le | Gt | Ge => {
            let ord = a.partial_cmp_same_type(&b).ok_or(EvalError::TypeMismatch {
                func,
                expected: "comparable values of the same type",
                found: b.type_name(),
            })?;
            let r = match func {
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            V::Boolean(r)
        }
        Sub => arith(func, a, b)?,
        Div => arith(func, a, b)?,
        Mod => {
            let (x, y) = (as_int(func, &a)?, as_int(func, &b)?);
            if y == 0 {
                return Err(EvalError::DivideByZero);
            }
            V::Integer(x.checked_rem(y).ok_or(EvalError::Overflow)?)
        }
        StringContains => {
            let (h, n) = (as_string(func, a)?, as_string(func, b)?);
            V::Boolean(h.contains(&n))
        }
        StartsWith => {
            let (s, p) = (as_string(func, a)?, as_string(func, b)?);
            V::Boolean(s.starts_with(&p))
        }
        EndsWith => {
            let (s, p) = (as_string(func, a)?, as_string(func, b)?);
            V::Boolean(s.ends_with(&p))
        }
        GlobMatch => {
            let (p, s) = (as_string(func, a)?, as_string(func, b)?);
            V::Boolean(glob_match(&p, &s))
        }
        TimeAdd => {
            let t = as_time(func, &a)?;
            let d = as_int(func, &b)?;
            let shifted = (t as i128) + (d as i128);
            if shifted < 0 || shifted > u64::MAX as i128 {
                return Err(EvalError::Overflow);
            }
            V::Time(shifted as u64)
        }
        _ => {
            return Err(EvalError::WrongArity {
                func,
                expected: "a binary-applicable function",
                found: 2,
            })
        }
    };
    Ok(out)
}

fn arith(func: Func, a: AttrValue, b: AttrValue) -> Result<AttrValue, EvalError> {
    use AttrValue as V;
    match (a, b) {
        (V::Integer(x), V::Integer(y)) => {
            let r = match func {
                Func::Add => x.checked_add(y),
                Func::Sub => x.checked_sub(y),
                Func::Mul => x.checked_mul(y),
                Func::Div => {
                    if y == 0 {
                        return Err(EvalError::DivideByZero);
                    }
                    x.checked_div(y)
                }
                _ => unreachable!("arith called with non-arith func"),
            };
            r.map(V::Integer).ok_or(EvalError::Overflow)
        }
        (V::Double(x), V::Double(y)) => {
            let r = match func {
                Func::Add => x + y,
                Func::Sub => x - y,
                Func::Mul => x * y,
                Func::Div => {
                    if y == 0.0 {
                        return Err(EvalError::DivideByZero);
                    }
                    x / y
                }
                _ => unreachable!("arith called with non-arith func"),
            };
            Ok(V::Double(r))
        }
        (a, b) => Err(EvalError::TypeMismatch {
            func,
            expected: "two integers or two doubles",
            found: if a.type_name() == "integer" || a.type_name() == "double" {
                b.type_name()
            } else {
                a.type_name()
            },
        }),
    }
}

fn apply(
    func: Func,
    args: &[Expr],
    src: &dyn AttributeSource,
    stats: &mut ExprStats,
    depth: u32,
) -> Result<Evaluated, EvalError> {
    use Func::*;
    let d = depth + 1;
    let scalar_arg = |i: usize, stats: &mut ExprStats| -> Result<AttrValue, EvalError> {
        as_scalar(eval_depth(&args[i], src, stats, d)?)
    };
    match func {
        // Binary scalar functions.
        Eq | Ne | Lt | Le | Gt | Ge | Sub | Div | Mod | StringContains | StartsWith | EndsWith
        | GlobMatch | TimeAdd => {
            need_args(func, args, 2, "2")?;
            let a = scalar_arg(0, stats)?;
            let b = scalar_arg(1, stats)?;
            Ok(Evaluated::Scalar(apply_binary_scalar(func, a, b)?))
        }
        // Variadic arithmetic.
        Add | Mul => {
            if args.len() < 2 {
                return Err(EvalError::WrongArity {
                    func,
                    expected: "at least 2",
                    found: args.len(),
                });
            }
            let mut acc = scalar_arg(0, stats)?;
            for i in 1..args.len() {
                let next = scalar_arg(i, stats)?;
                acc = arith(func, acc, next)?;
            }
            Ok(Evaluated::Scalar(acc))
        }
        // Boolean connectives with short-circuit.
        And => {
            for (i, _) in args.iter().enumerate() {
                let v = as_bool(func, scalar_arg(i, stats)?)?;
                if !v {
                    return Ok(Evaluated::Scalar(AttrValue::Boolean(false)));
                }
            }
            Ok(Evaluated::Scalar(AttrValue::Boolean(true)))
        }
        Or => {
            for (i, _) in args.iter().enumerate() {
                let v = as_bool(func, scalar_arg(i, stats)?)?;
                if v {
                    return Ok(Evaluated::Scalar(AttrValue::Boolean(true)));
                }
            }
            Ok(Evaluated::Scalar(AttrValue::Boolean(false)))
        }
        Not => {
            need_args(func, args, 1, "1")?;
            let v = as_bool(func, scalar_arg(0, stats)?)?;
            Ok(Evaluated::Scalar(AttrValue::Boolean(!v)))
        }
        // Strings.
        Concat => {
            let mut out = String::new();
            for (i, _) in args.iter().enumerate() {
                out.push_str(&as_string(func, scalar_arg(i, stats)?)?);
            }
            Ok(Evaluated::Scalar(AttrValue::String(out)))
        }
        Lower | Upper => {
            need_args(func, args, 1, "1")?;
            let s = as_string(func, scalar_arg(0, stats)?)?;
            let out = if func == Lower {
                s.to_ascii_lowercase()
            } else {
                s.to_ascii_uppercase()
            };
            Ok(Evaluated::Scalar(AttrValue::String(out)))
        }
        StringLength => {
            need_args(func, args, 1, "1")?;
            let s = as_string(func, scalar_arg(0, stats)?)?;
            Ok(Evaluated::Scalar(AttrValue::Integer(
                s.chars().count() as i64
            )))
        }
        // Bags.
        OneAndOnly => {
            need_args(func, args, 1, "1")?;
            let bag = as_bag(eval_depth(&args[0], src, stats, d)?)?;
            if bag.len() == 1 {
                Ok(Evaluated::Scalar(bag.into_iter().next().expect("len 1")))
            } else {
                Err(EvalError::NotSingleton { size: bag.len() })
            }
        }
        BagSize => {
            need_args(func, args, 1, "1")?;
            let bag = as_bag(eval_depth(&args[0], src, stats, d)?)?;
            Ok(Evaluated::Scalar(AttrValue::Integer(bag.len() as i64)))
        }
        IsIn => {
            need_args(func, args, 2, "2")?;
            let v = scalar_arg(0, stats)?;
            let bag = as_bag(eval_depth(&args[1], src, stats, d)?)?;
            Ok(Evaluated::Scalar(AttrValue::Boolean(bag.contains(&v))))
        }
        Union => {
            need_args(func, args, 2, "2")?;
            let mut a = as_bag(eval_depth(&args[0], src, stats, d)?)?;
            let b = as_bag(eval_depth(&args[1], src, stats, d)?)?;
            for v in b {
                if !a.contains(&v) {
                    a.push(v);
                }
            }
            Ok(Evaluated::Bag(a))
        }
        Intersection => {
            need_args(func, args, 2, "2")?;
            let a = as_bag(eval_depth(&args[0], src, stats, d)?)?;
            let b = as_bag(eval_depth(&args[1], src, stats, d)?)?;
            let mut out = Vec::new();
            for v in a {
                if b.contains(&v) && !out.contains(&v) {
                    out.push(v);
                }
            }
            Ok(Evaluated::Bag(out))
        }
        Subset => {
            need_args(func, args, 2, "2")?;
            let a = as_bag(eval_depth(&args[0], src, stats, d)?)?;
            let b = as_bag(eval_depth(&args[1], src, stats, d)?)?;
            Ok(Evaluated::Scalar(AttrValue::Boolean(
                a.iter().all(|v| b.contains(v)),
            )))
        }
        SetEquals => {
            need_args(func, args, 2, "2")?;
            let a = as_bag(eval_depth(&args[0], src, stats, d)?)?;
            let b = as_bag(eval_depth(&args[1], src, stats, d)?)?;
            let sub = a.iter().all(|v| b.contains(v)) && b.iter().all(|v| a.contains(v));
            Ok(Evaluated::Scalar(AttrValue::Boolean(sub)))
        }
        // Higher-order.
        AnyOf | AllOf => {
            need_args(func, args, 3, "3")?;
            let f = match eval_depth(&args[0], src, stats, d)? {
                Evaluated::Function(f) => f,
                _ => return Err(EvalError::NotAFunction),
            };
            let a = scalar_arg(1, stats)?;
            let bag = as_bag(eval_depth(&args[2], src, stats, d)?)?;
            let mut all = true;
            let mut any = false;
            for x in bag {
                stats.functions_applied += 1;
                let r = as_bool(f, apply_binary_scalar(f, a.clone(), x)?)?;
                all &= r;
                any |= r;
                if func == AnyOf && any {
                    break;
                }
                if func == AllOf && !all {
                    break;
                }
            }
            let out = if func == AnyOf { any } else { all };
            Ok(Evaluated::Scalar(AttrValue::Boolean(out)))
        }
        AnyOfAny => {
            need_args(func, args, 3, "3")?;
            let f = match eval_depth(&args[0], src, stats, d)? {
                Evaluated::Function(f) => f,
                _ => return Err(EvalError::NotAFunction),
            };
            let a = as_bag(eval_depth(&args[1], src, stats, d)?)?;
            let b = as_bag(eval_depth(&args[2], src, stats, d)?)?;
            for x in &a {
                for y in &b {
                    stats.functions_applied += 1;
                    if as_bool(f, apply_binary_scalar(f, x.clone(), y.clone())?)? {
                        return Ok(Evaluated::Scalar(AttrValue::Boolean(true)));
                    }
                }
            }
            Ok(Evaluated::Scalar(AttrValue::Boolean(false)))
        }
        // Time.
        HourOf => {
            need_args(func, args, 1, "1")?;
            let t = as_time(func, &scalar_arg(0, stats)?)?;
            Ok(Evaluated::Scalar(AttrValue::Integer(
                ((t / 3_600_000) % 24) as i64,
            )))
        }
        DayOf => {
            need_args(func, args, 1, "1")?;
            let t = as_time(func, &scalar_arg(0, stats)?)?;
            Ok(Evaluated::Scalar(AttrValue::Integer(
                (t / 86_400_000) as i64,
            )))
        }
        TimeInRange => {
            need_args(func, args, 3, "3")?;
            let t = as_time(func, &scalar_arg(0, stats)?)?;
            let lo = as_time(func, &scalar_arg(1, stats)?)?;
            let hi = as_time(func, &scalar_arg(2, stats)?)?;
            Ok(Evaluated::Scalar(AttrValue::Boolean(lo <= t && t < hi)))
        }
        // Conversions.
        IntToDouble => {
            need_args(func, args, 1, "1")?;
            let i = as_int(func, &scalar_arg(0, stats)?)?;
            Ok(Evaluated::Scalar(AttrValue::Double(i as f64)))
        }
        ToString => {
            need_args(func, args, 1, "1")?;
            let v = scalar_arg(0, stats)?;
            let s = match v {
                AttrValue::String(s) => s,
                other => format!("{other}"),
            };
            Ok(Evaluated::Scalar(AttrValue::String(s)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeId;

    fn ctx() -> RequestContext {
        RequestContext::basic("alice", "ehr/1", "read")
            .with_subject_attr("role", "doctor")
            .with_subject_attr("role", "researcher")
            .with_subject_attr("age", 42i64)
            .with_env_attr("current-time", AttrValue::Time(9 * 3_600_000 + 42))
    }

    fn eval_ok(e: &Expr) -> Evaluated {
        let mut stats = ExprStats::default();
        eval(e, &ctx(), &mut stats).expect("evaluation succeeds")
    }

    fn cond(e: &Expr) -> Result<bool, EvalError> {
        let mut stats = ExprStats::default();
        eval_condition(e, &ctx(), &mut stats)
    }

    #[test]
    fn literal_and_attribute() {
        assert_eq!(
            eval_ok(&Expr::val(5i64)),
            Evaluated::Scalar(AttrValue::Integer(5))
        );
        let roles = eval_ok(&Expr::attr(AttributeId::subject("role")));
        assert_eq!(
            roles,
            Evaluated::Bag(vec![
                AttrValue::from("doctor"),
                AttrValue::from("researcher")
            ])
        );
    }

    #[test]
    fn missing_attribute_behaviour() {
        let optional = Expr::attr(AttributeId::subject("clearance"));
        assert_eq!(eval_ok(&optional), Evaluated::Bag(vec![]));
        let required = Expr::attr_required(AttributeId::subject("clearance"));
        let mut stats = ExprStats::default();
        assert_eq!(
            eval(&required, &ctx(), &mut stats),
            Err(EvalError::MissingAttribute(AttributeId::subject(
                "clearance"
            )))
        );
    }

    #[test]
    fn comparison_functions() {
        assert_eq!(cond(&Expr::eq(Expr::val(1i64), Expr::val(1i64))), Ok(true));
        assert_eq!(
            cond(&Expr::apply(
                Func::Lt,
                vec![Expr::val(1i64), Expr::val(2i64)]
            )),
            Ok(true)
        );
        assert_eq!(
            cond(&Expr::apply(Func::Ge, vec![Expr::val("b"), Expr::val("a")])),
            Ok(true)
        );
        // Cross-type ordering is an error.
        assert!(cond(&Expr::apply(
            Func::Lt,
            vec![Expr::val(1i64), Expr::val("a")]
        ))
        .is_err());
    }

    #[test]
    fn arithmetic() {
        let e = Expr::apply(
            Func::Add,
            vec![Expr::val(1i64), Expr::val(2i64), Expr::val(3i64)],
        );
        assert_eq!(eval_ok(&e), Evaluated::Scalar(AttrValue::Integer(6)));
        let div0 = Expr::apply(Func::Div, vec![Expr::val(1i64), Expr::val(0i64)]);
        let mut stats = ExprStats::default();
        assert_eq!(
            eval(&div0, &ctx(), &mut stats),
            Err(EvalError::DivideByZero)
        );
        let ovf = Expr::apply(Func::Add, vec![Expr::val(i64::MAX), Expr::val(1i64)]);
        assert_eq!(eval(&ovf, &ctx(), &mut stats), Err(EvalError::Overflow));
    }

    #[test]
    fn boolean_short_circuit() {
        // Second arg would error (type mismatch) but is never reached.
        let e = Expr::and(vec![
            Expr::val(false),
            Expr::apply(Func::Lt, vec![Expr::val(1i64), Expr::val("a")]),
        ]);
        assert_eq!(cond(&e), Ok(false));
        let e = Expr::or(vec![
            Expr::val(true),
            Expr::apply(Func::Lt, vec![Expr::val(1i64), Expr::val("a")]),
        ]);
        assert_eq!(cond(&e), Ok(true));
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            cond(&Expr::apply(
                Func::StringContains,
                vec![Expr::val("radiology"), Expr::val("radio")]
            )),
            Ok(true)
        );
        assert_eq!(
            cond(&Expr::apply(
                Func::GlobMatch,
                vec![Expr::val("ehr/*"), Expr::val("ehr/1")]
            )),
            Ok(true)
        );
        let e = Expr::apply(Func::Concat, vec![Expr::val("a"), Expr::val("b")]);
        assert_eq!(eval_ok(&e), Evaluated::Scalar(AttrValue::from("ab")));
    }

    #[test]
    fn bag_functions() {
        let roles = Expr::attr(AttributeId::subject("role"));
        assert_eq!(
            eval_ok(&Expr::apply(Func::BagSize, vec![roles.clone()])),
            Evaluated::Scalar(AttrValue::Integer(2))
        );
        assert_eq!(
            cond(&Expr::apply(
                Func::IsIn,
                vec![Expr::val("doctor"), roles.clone()]
            )),
            Ok(true)
        );
        // one-and-only on a two-element bag errors.
        let mut stats = ExprStats::default();
        assert_eq!(
            eval(
                &Expr::apply(Func::OneAndOnly, vec![roles]),
                &ctx(),
                &mut stats
            ),
            Err(EvalError::NotSingleton { size: 2 })
        );
    }

    #[test]
    fn set_operations() {
        let a = Expr::BagLiteral(vec!["x".into(), "y".into()]);
        let b = Expr::BagLiteral(vec!["y".into(), "z".into()]);
        let union = eval_ok(&Expr::apply(Func::Union, vec![a.clone(), b.clone()]));
        assert_eq!(
            union,
            Evaluated::Bag(vec!["x".into(), "y".into(), "z".into()])
        );
        let inter = eval_ok(&Expr::apply(Func::Intersection, vec![a.clone(), b.clone()]));
        assert_eq!(inter, Evaluated::Bag(vec!["y".into()]));
        assert_eq!(
            cond(&Expr::apply(
                Func::Subset,
                vec![Expr::BagLiteral(vec!["y".into()]), b.clone()]
            )),
            Ok(true)
        );
        assert_eq!(cond(&Expr::apply(Func::SetEquals, vec![a, b])), Ok(false));
    }

    #[test]
    fn higher_order_any_of() {
        // any-of(eq, "doctor", subject.role)
        let e = Expr::apply(
            Func::AnyOf,
            vec![
                Expr::FuncRef(Func::Eq),
                Expr::val("doctor"),
                Expr::attr(AttributeId::subject("role")),
            ],
        );
        assert_eq!(cond(&e), Ok(true));
        // all-of(eq, "doctor", subject.role) — bag also has "researcher".
        let e = Expr::apply(
            Func::AllOf,
            vec![
                Expr::FuncRef(Func::Eq),
                Expr::val("doctor"),
                Expr::attr(AttributeId::subject("role")),
            ],
        );
        assert_eq!(cond(&e), Ok(false));
    }

    #[test]
    fn any_of_any() {
        let e = Expr::apply(
            Func::AnyOfAny,
            vec![
                Expr::FuncRef(Func::Eq),
                Expr::BagLiteral(vec!["admin".into(), "researcher".into()]),
                Expr::attr(AttributeId::subject("role")),
            ],
        );
        assert_eq!(cond(&e), Ok(true));
    }

    #[test]
    fn time_functions() {
        let t = Expr::attr(AttributeId::environment("current-time"));
        assert_eq!(
            eval_ok(&Expr::apply(Func::HourOf, vec![t.clone()])),
            Evaluated::Scalar(AttrValue::Integer(9))
        );
        let in_business_hours = Expr::apply(
            Func::TimeInRange,
            vec![
                t,
                Expr::val(AttrValue::Time(8 * 3_600_000)),
                Expr::val(AttrValue::Time(17 * 3_600_000)),
            ],
        );
        assert_eq!(cond(&in_business_hours), Ok(true));
    }

    #[test]
    fn singleton_bag_coerces_to_scalar() {
        // subject.age is a singleton bag; gt() applies one-and-only implicitly.
        let e = Expr::apply(
            Func::Gt,
            vec![Expr::attr(AttributeId::subject("age")), Expr::val(18i64)],
        );
        assert_eq!(cond(&e), Ok(true));
    }

    #[test]
    fn stats_count_work() {
        let e = Expr::and(vec![
            Expr::eq(Expr::attr(AttributeId::subject("id")), Expr::val("alice")),
            Expr::eq(Expr::attr(AttributeId::action("id")), Expr::val("read")),
        ]);
        let mut stats = ExprStats::default();
        eval(&e, &ctx(), &mut stats).unwrap();
        assert_eq!(stats.attribute_lookups, 2);
        assert!(stats.functions_applied >= 3);
    }

    #[test]
    fn depth_limit_enforced() {
        let mut e = Expr::val(true);
        for _ in 0..60 {
            e = Expr::negate(Expr::negate(e));
        }
        let mut stats = ExprStats::default();
        assert_eq!(eval(&e, &ctx(), &mut stats), Err(EvalError::DepthExceeded));
    }

    #[test]
    fn func_name_parse_roundtrip() {
        for f in [
            Func::Eq,
            Func::AnyOf,
            Func::TimeInRange,
            Func::GlobMatch,
            Func::OneAndOnly,
            Func::IntToDouble,
        ] {
            assert_eq!(Func::parse(f.name()), Some(f));
        }
        assert_eq!(Func::parse("no-such-fn"), None);
    }

    #[test]
    fn node_count() {
        let e = Expr::and(vec![Expr::val(true), Expr::negate(Expr::val(false))]);
        assert_eq!(e.node_count(), 4);
    }
}
