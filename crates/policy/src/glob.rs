//! Glob pattern matching (`*` and `?`) used by targets and string
//! functions — e.g. resource hierarchies such as `ehr/records/*`.

/// Matches `text` against `pattern`, where `*` matches any (possibly
/// empty) substring and `?` matches exactly one character.
///
/// Matching is case-sensitive and operates on Unicode scalar values.
///
/// # Examples
///
/// ```
/// use dacs_policy::glob::glob_match;
///
/// assert!(glob_match("ehr/records/*", "ehr/records/42"));
/// assert!(glob_match("user-??", "user-ab"));
/// assert!(!glob_match("ehr/*", "lab/1"));
/// ```
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Classic iterative matcher with single-star backtracking.
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after '*', text idx)
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last '*' swallow one more character.
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Conservatively decides whether two glob patterns could match a common
/// string. Used by static conflict analysis: a `false` answer is always
/// sound (no overlap); `true` may be a false positive.
pub fn globs_may_overlap(a: &str, b: &str) -> bool {
    // Exact match when neither has wildcards.
    let a_wild = a.contains('*') || a.contains('?');
    let b_wild = b.contains('*') || b.contains('?');
    match (a_wild, b_wild) {
        (false, false) => a == b,
        (false, true) => glob_match(b, a),
        (true, false) => glob_match(a, b),
        (true, true) => {
            // Compare the literal prefixes up to the first wildcard; if
            // they disagree, no common string exists.
            let pa: String = a.chars().take_while(|c| *c != '*' && *c != '?').collect();
            let pb: String = b.chars().take_while(|c| *c != '*' && *c != '?').collect();
            let n = pa.len().min(pb.len());
            pa.as_bytes()[..n] == pb.as_bytes()[..n]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "abd"));
        assert!(!glob_match("abc", "ab"));
        assert!(!glob_match("ab", "abc"));
    }

    #[test]
    fn star_matches_any_run() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a*c", "ac"));
        assert!(glob_match("a*c", "abbbc"));
        assert!(!glob_match("a*c", "abbbd"));
    }

    #[test]
    fn question_matches_one() {
        assert!(glob_match("?", "x"));
        assert!(!glob_match("?", ""));
        assert!(!glob_match("?", "xy"));
        assert!(glob_match("a?c", "abc"));
    }

    #[test]
    fn multiple_stars_backtrack() {
        assert!(glob_match("*a*b*", "xaxbx"));
        assert!(glob_match("**", "abc"));
        assert!(!glob_match("*a*b*", "bxa"));
    }

    #[test]
    fn resource_hierarchies() {
        assert!(glob_match("ehr/*/labs", "ehr/patient-9/labs"));
        assert!(!glob_match("ehr/*/labs", "ehr/patient-9/notes"));
        assert!(glob_match("ehr/**", "ehr/a/b/c"));
    }

    #[test]
    fn unicode_text() {
        assert!(glob_match("caf?", "café"));
        assert!(glob_match("*é", "café"));
    }

    #[test]
    fn overlap_literal_vs_literal() {
        assert!(globs_may_overlap("a", "a"));
        assert!(!globs_may_overlap("a", "b"));
    }

    #[test]
    fn overlap_literal_vs_glob() {
        assert!(globs_may_overlap("ehr/1", "ehr/*"));
        assert!(!globs_may_overlap("lab/1", "ehr/*"));
        assert!(globs_may_overlap("ehr/*", "ehr/1"));
    }

    #[test]
    fn overlap_glob_vs_glob_prefix_rule() {
        assert!(globs_may_overlap("ehr/*", "ehr/records/*"));
        assert!(!globs_may_overlap("lab/*", "ehr/*"));
        // Conservative: same prefix up to wildcard counts as overlap.
        assert!(globs_may_overlap("e*", "ehr/*"));
    }
}
