//! # dacs-policy
//!
//! The policy language and evaluation core of the DACS reproduction of
//! *Architecting Dependable Access Control Systems for Multi-Domain
//! Computing Environments* (Machulak, Parkin, van Moorsel, DSN 2008).
//!
//! This crate is a from-scratch implementation of the XACML-like policy
//! machinery the paper builds on (§2.3):
//!
//! * [`attr`] / [`request`] — attribute categories, typed values and the
//!   request context (authorization decision query).
//! * [`target`] — indexable applicability tests.
//! * [`expr`] — the condition expression language and function library.
//! * [`policy`] — rules, policies, policy sets, obligations.
//! * [`combining`] — the six combining algorithms with obligation
//!   propagation.
//! * [`eval`] — the evaluation engine (the heart of a PDP).
//! * [`conflict`] — static modality-conflict analysis and shadowing
//!   detection (§3.1).
//! * [`dsl`] — a textual syntax with parser and pretty-printer, standing
//!   in for XACML's XML (size effects are modelled in `dacs-wire`).
//! * [`glob`] — wildcard matching for resource hierarchies.
//!
//! # Examples
//!
//! ```
//! use dacs_policy::dsl::parse_policy;
//! use dacs_policy::eval::{EmptyStore, Evaluator};
//! use dacs_policy::policy::Decision;
//! use dacs_policy::request::RequestContext;
//!
//! let policy = parse_policy(r#"
//! policy "hello" deny-unless-permit {
//!   rule "readers" permit {
//!     target { action "id" == "read"; }
//!   }
//! }
//! "#)?;
//!
//! let request = RequestContext::basic("alice", "doc/1", "read");
//! let store = EmptyStore;
//! let mut evaluator = Evaluator::new(&store, &request);
//! assert_eq!(evaluator.evaluate_policy(&policy).decision, Decision::Permit);
//! # Ok::<(), dacs_policy::dsl::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod combining;
pub mod conflict;
pub mod dsl;
pub mod eval;
pub mod expr;
pub mod glob;
pub mod policy;
pub mod request;
pub mod target;

pub use attr::{AttrValue, AttributeId, Category};
pub use eval::{EvalMetrics, Evaluator, InMemoryStore, PolicyStore, Response, Status};
pub use expr::{AttributeSource, Expr, Func};
pub use policy::{
    CombiningAlg, Decision, Effect, Obligation, ObligationExpr, Policy, PolicyElement, PolicyId,
    PolicySet, Rule,
};
pub use request::RequestContext;
pub use target::{AllOf, AnyOf, AttrMatch, MatchOp, Target};
