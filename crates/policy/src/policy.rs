//! Policies, policy sets, rules and obligations — the structural core of
//! the policy language (XACML `<Policy>`, `<PolicySet>`, `<Rule>`,
//! `<Obligation>`).

use crate::attr::AttrValue;
use crate::expr::Expr;
use crate::target::Target;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The effect of a rule: what it contributes when it applies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Effect {
    /// The rule authorizes the access.
    Permit,
    /// The rule forbids the access.
    Deny,
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effect::Permit => write!(f, "permit"),
            Effect::Deny => write!(f, "deny"),
        }
    }
}

/// The authorization decision returned to the PEP.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Decision {
    /// Access is authorized.
    Permit,
    /// Access is forbidden.
    Deny,
    /// No policy applied to the request.
    NotApplicable,
    /// Evaluation failed (missing attribute, type error, broken
    /// reference); dependable PEPs treat this as deny (fail-safe).
    Indeterminate,
}

impl Decision {
    /// The decision corresponding to an effect.
    pub fn from_effect(e: Effect) -> Decision {
        match e {
            Effect::Permit => Decision::Permit,
            Effect::Deny => Decision::Deny,
        }
    }

    /// Whether this decision is Permit.
    pub fn is_permit(&self) -> bool {
        matches!(self, Decision::Permit)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Permit => write!(f, "Permit"),
            Decision::Deny => write!(f, "Deny"),
            Decision::NotApplicable => write!(f, "NotApplicable"),
            Decision::Indeterminate => write!(f, "Indeterminate"),
        }
    }
}

/// Identifier of a policy or policy set.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct PolicyId(pub String);

impl PolicyId {
    /// Creates a policy identifier.
    pub fn new(id: impl Into<String>) -> Self {
        PolicyId(id.into())
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PolicyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PolicyId {
    fn from(s: &str) -> Self {
        PolicyId(s.to_owned())
    }
}

/// An obligation template attached to a rule, policy or policy set.
///
/// Parameters are expressions evaluated against the request when the
/// obligation fires, enabling the paper's "parameterised actions in the
/// enforcement stage" (§2.3).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ObligationExpr {
    /// Obligation identifier understood by the PEP (e.g. `"log"`,
    /// `"encrypt"`, `"notify"`).
    pub id: String,
    /// The decision on which this obligation must be fulfilled.
    pub fulfill_on: Effect,
    /// Named parameter expressions.
    pub params: Vec<(String, Expr)>,
}

impl ObligationExpr {
    /// Creates an obligation template without parameters.
    pub fn new(id: impl Into<String>, fulfill_on: Effect) -> Self {
        ObligationExpr {
            id: id.into(),
            fulfill_on,
            params: Vec::new(),
        }
    }

    /// Adds a parameter expression (builder style).
    pub fn with_param(mut self, name: impl Into<String>, expr: Expr) -> Self {
        self.params.push((name.into(), expr));
        self
    }
}

/// A concrete obligation returned to the PEP with evaluated parameters.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Obligation {
    /// Obligation identifier.
    pub id: String,
    /// Evaluated parameters.
    pub params: Vec<(String, AttrValue)>,
}

impl Obligation {
    /// Looks up a parameter value by name.
    pub fn param(&self, name: &str) -> Option<&AttrValue> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// A rule: the smallest unit of policy (XACML `<Rule>`).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Rule {
    /// Rule identifier, unique within its policy.
    pub id: String,
    /// The effect when target and condition hold.
    pub effect: Effect,
    /// Applicability test.
    pub target: Target,
    /// Optional boolean condition, evaluated only if the target matches.
    pub condition: Option<Expr>,
    /// Obligations contributed when this rule decides.
    pub obligations: Vec<ObligationExpr>,
}

impl Rule {
    /// Creates a rule with an empty (match-all) target and no condition.
    pub fn new(id: impl Into<String>, effect: Effect) -> Self {
        Rule {
            id: id.into(),
            effect,
            target: Target::match_all(),
            condition: None,
            obligations: Vec::new(),
        }
    }

    /// Sets the target (builder style).
    pub fn with_target(mut self, target: Target) -> Self {
        self.target = target;
        self
    }

    /// Sets the condition (builder style).
    pub fn with_condition(mut self, condition: Expr) -> Self {
        self.condition = Some(condition);
        self
    }

    /// Adds an obligation (builder style).
    pub fn with_obligation(mut self, obligation: ObligationExpr) -> Self {
        self.obligations.push(obligation);
        self
    }
}

/// Rule- and policy-combining algorithms (§2.3, §3.1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CombiningAlg {
    /// Any Deny wins; Indeterminate beats Permit.
    DenyOverrides,
    /// Any Permit wins; Indeterminate beats Deny.
    PermitOverrides,
    /// The first applicable child decides.
    FirstApplicable,
    /// Exactly one child's target may match; that child decides
    /// (policy-combining only).
    OnlyOneApplicable,
    /// Deny unless an explicit Permit is produced (never NotApplicable).
    DenyUnlessPermit,
    /// Permit unless an explicit Deny is produced (never NotApplicable).
    PermitUnlessDeny,
}

impl CombiningAlg {
    /// DSL name of the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            CombiningAlg::DenyOverrides => "deny-overrides",
            CombiningAlg::PermitOverrides => "permit-overrides",
            CombiningAlg::FirstApplicable => "first-applicable",
            CombiningAlg::OnlyOneApplicable => "only-one-applicable",
            CombiningAlg::DenyUnlessPermit => "deny-unless-permit",
            CombiningAlg::PermitUnlessDeny => "permit-unless-deny",
        }
    }

    /// Parses a DSL algorithm name.
    pub fn parse(s: &str) -> Option<CombiningAlg> {
        Some(match s {
            "deny-overrides" => CombiningAlg::DenyOverrides,
            "permit-overrides" => CombiningAlg::PermitOverrides,
            "first-applicable" => CombiningAlg::FirstApplicable,
            "only-one-applicable" => CombiningAlg::OnlyOneApplicable,
            "deny-unless-permit" => CombiningAlg::DenyUnlessPermit,
            "permit-unless-deny" => CombiningAlg::PermitUnlessDeny,
            _ => return None,
        })
    }

    /// All algorithms (for ablation sweeps).
    pub const ALL: [CombiningAlg; 6] = [
        CombiningAlg::DenyOverrides,
        CombiningAlg::PermitOverrides,
        CombiningAlg::FirstApplicable,
        CombiningAlg::OnlyOneApplicable,
        CombiningAlg::DenyUnlessPermit,
        CombiningAlg::PermitUnlessDeny,
    ];
}

impl fmt::Display for CombiningAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A policy: a target, a set of rules and a rule-combining algorithm.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Policy {
    /// Identifier, unique within a repository.
    pub id: PolicyId,
    /// Monotonic version (managed by the PAP).
    pub version: u64,
    /// Applicability test for the whole policy.
    pub target: Target,
    /// The rules, combined by `rule_combining`.
    pub rules: Vec<Rule>,
    /// How rule decisions are combined.
    pub rule_combining: CombiningAlg,
    /// Obligations contributed by the policy itself.
    pub obligations: Vec<ObligationExpr>,
    /// The authority that issued the policy (delegation / multi-authority
    /// support, §3.2).
    pub issuer: Option<String>,
}

impl Policy {
    /// Creates an empty policy with the given combining algorithm.
    pub fn new(id: impl Into<PolicyId>, rule_combining: CombiningAlg) -> Self {
        Policy {
            id: id.into(),
            version: 1,
            target: Target::match_all(),
            rules: Vec::new(),
            rule_combining,
            obligations: Vec::new(),
            issuer: None,
        }
    }

    /// Sets the target (builder style).
    pub fn with_target(mut self, target: Target) -> Self {
        self.target = target;
        self
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds a policy-level obligation (builder style).
    pub fn with_obligation(mut self, obligation: ObligationExpr) -> Self {
        self.obligations.push(obligation);
        self
    }

    /// Sets the issuer (builder style).
    pub fn with_issuer(mut self, issuer: impl Into<String>) -> Self {
        self.issuer = Some(issuer.into());
        self
    }

    /// Total number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

/// A child of a policy set.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PolicyElement {
    /// An inline policy.
    Policy(Policy),
    /// An inline nested policy set.
    PolicySet(Box<PolicySet>),
    /// A reference to a policy stored elsewhere (resolved through the
    /// PAP's policy store at evaluation time).
    PolicyRef(PolicyId),
    /// A reference to a policy set stored elsewhere.
    PolicySetRef(PolicyId),
}

impl PolicyElement {
    /// The identifier of the element (inline or referenced).
    pub fn id(&self) -> &PolicyId {
        match self {
            PolicyElement::Policy(p) => &p.id,
            PolicyElement::PolicySet(ps) => &ps.id,
            PolicyElement::PolicyRef(id) | PolicyElement::PolicySetRef(id) => id,
        }
    }
}

/// A policy set: targets + children + policy-combining algorithm.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PolicySet {
    /// Identifier, unique within a repository.
    pub id: PolicyId,
    /// Monotonic version (managed by the PAP).
    pub version: u64,
    /// Applicability test for the whole set.
    pub target: Target,
    /// Children, combined by `policy_combining`.
    pub elements: Vec<PolicyElement>,
    /// How child decisions are combined.
    pub policy_combining: CombiningAlg,
    /// Obligations contributed by the set itself.
    pub obligations: Vec<ObligationExpr>,
    /// Issuing authority.
    pub issuer: Option<String>,
}

impl PolicySet {
    /// Creates an empty policy set with the given combining algorithm.
    pub fn new(id: impl Into<PolicyId>, policy_combining: CombiningAlg) -> Self {
        PolicySet {
            id: id.into(),
            version: 1,
            target: Target::match_all(),
            elements: Vec::new(),
            policy_combining,
            obligations: Vec::new(),
            issuer: None,
        }
    }

    /// Sets the target (builder style).
    pub fn with_target(mut self, target: Target) -> Self {
        self.target = target;
        self
    }

    /// Adds an inline policy (builder style).
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.elements.push(PolicyElement::Policy(policy));
        self
    }

    /// Adds an inline nested policy set (builder style).
    pub fn with_policy_set(mut self, set: PolicySet) -> Self {
        self.elements.push(PolicyElement::PolicySet(Box::new(set)));
        self
    }

    /// Adds a policy reference (builder style).
    pub fn with_policy_ref(mut self, id: impl Into<PolicyId>) -> Self {
        self.elements.push(PolicyElement::PolicyRef(id.into()));
        self
    }

    /// Adds a set-level obligation (builder style).
    pub fn with_obligation(mut self, obligation: ObligationExpr) -> Self {
        self.obligations.push(obligation);
        self
    }

    /// Number of direct children.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the set has no children.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeId;
    use crate::target::AttrMatch;

    #[test]
    fn builders_compose() {
        let p = Policy::new("p1", CombiningAlg::DenyOverrides)
            .with_target(Target::all(vec![AttrMatch::equals(
                AttributeId::resource("type"),
                "ehr",
            )]))
            .with_rule(
                Rule::new("r1", Effect::Permit)
                    .with_condition(Expr::val(true))
                    .with_obligation(
                        ObligationExpr::new("log", Effect::Permit)
                            .with_param("level", Expr::val("info")),
                    ),
            )
            .with_rule(Rule::new("default-deny", Effect::Deny))
            .with_issuer("pap.hospital-a");
        assert_eq!(p.rule_count(), 2);
        assert_eq!(p.issuer.as_deref(), Some("pap.hospital-a"));
        assert_eq!(p.rules[0].obligations.len(), 1);
    }

    #[test]
    fn policy_set_children_and_ids() {
        let ps = PolicySet::new("root", CombiningAlg::FirstApplicable)
            .with_policy(Policy::new("p1", CombiningAlg::DenyOverrides))
            .with_policy_ref("shared-policy");
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.elements[0].id().as_str(), "p1");
        assert_eq!(ps.elements[1].id().as_str(), "shared-policy");
    }

    #[test]
    fn combining_alg_name_roundtrip() {
        for alg in CombiningAlg::ALL {
            assert_eq!(CombiningAlg::parse(alg.name()), Some(alg));
        }
        assert_eq!(CombiningAlg::parse("nope"), None);
    }

    #[test]
    fn decision_display_and_effect() {
        assert_eq!(Decision::from_effect(Effect::Permit), Decision::Permit);
        assert_eq!(Decision::from_effect(Effect::Deny), Decision::Deny);
        assert_eq!(Decision::Permit.to_string(), "Permit");
        assert!(Decision::Permit.is_permit());
        assert!(!Decision::Indeterminate.is_permit());
    }

    #[test]
    fn obligation_param_lookup() {
        let ob = Obligation {
            id: "log".into(),
            params: vec![("level".into(), AttrValue::from("info"))],
        };
        assert_eq!(ob.param("level"), Some(&AttrValue::from("info")));
        assert_eq!(ob.param("missing"), None);
    }
}
