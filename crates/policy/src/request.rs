//! The authorization decision query: a request context holding attribute
//! bags for subject, resource, action and environment (Fig. 4 of the
//! paper — the context the PEP constructs and the PDP evaluates).

use crate::attr::{AttrValue, AttributeId, Category, ID_ATTR};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A multi-valued attribute container describing one access request.
///
/// # Examples
///
/// ```
/// use dacs_policy::request::RequestContext;
///
/// let req = RequestContext::basic("alice", "ehr/record/42", "read")
///     .with_subject_attr("role", "doctor")
///     .with_env_attr("current-time", dacs_policy::attr::AttrValue::Time(9 * 3_600_000));
/// assert_eq!(req.subject_id(), Some("alice"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct RequestContext {
    attrs: BTreeMap<AttributeId, Vec<AttrValue>>,
}

impl RequestContext {
    /// Creates an empty request context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a context with the three conventional identifiers set:
    /// `subject.id`, `resource.id` and `action.id`.
    pub fn basic(
        subject_id: impl Into<String>,
        resource_id: impl Into<String>,
        action_id: impl Into<String>,
    ) -> Self {
        let mut ctx = Self::new();
        ctx.add(AttributeId::subject(ID_ATTR), subject_id.into());
        ctx.add(AttributeId::resource(ID_ATTR), resource_id.into());
        ctx.add(AttributeId::action(ID_ATTR), action_id.into());
        ctx
    }

    /// Appends a value to the bag of `id`.
    pub fn add(&mut self, id: AttributeId, value: impl Into<AttrValue>) {
        self.attrs.entry(id).or_default().push(value.into());
    }

    /// Builder-style: adds a subject attribute.
    pub fn with_subject_attr(mut self, name: &str, value: impl Into<AttrValue>) -> Self {
        self.add(AttributeId::subject(name), value);
        self
    }

    /// Builder-style: adds a resource attribute.
    pub fn with_resource_attr(mut self, name: &str, value: impl Into<AttrValue>) -> Self {
        self.add(AttributeId::resource(name), value);
        self
    }

    /// Builder-style: adds an action attribute.
    pub fn with_action_attr(mut self, name: &str, value: impl Into<AttrValue>) -> Self {
        self.add(AttributeId::action(name), value);
        self
    }

    /// Builder-style: adds an environment attribute.
    pub fn with_env_attr(mut self, name: &str, value: impl Into<AttrValue>) -> Self {
        self.add(AttributeId::environment(name), value);
        self
    }

    /// The bag of values for `id` (empty slice when absent).
    pub fn bag(&self, id: &AttributeId) -> &[AttrValue] {
        self.attrs.get(id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the context holds any value for `id`.
    pub fn contains(&self, id: &AttributeId) -> bool {
        self.attrs.contains_key(id)
    }

    /// First string value of `subject.id`, if present.
    pub fn subject_id(&self) -> Option<&str> {
        self.first_str(&AttributeId::subject(ID_ATTR))
    }

    /// First string value of `resource.id`, if present.
    pub fn resource_id(&self) -> Option<&str> {
        self.first_str(&AttributeId::resource(ID_ATTR))
    }

    /// First string value of `action.id`, if present.
    pub fn action_id(&self) -> Option<&str> {
        self.first_str(&AttributeId::action(ID_ATTR))
    }

    fn first_str(&self, id: &AttributeId) -> Option<&str> {
        self.bag(id).iter().find_map(AttrValue::as_str)
    }

    /// Iterates over all (id, bag) entries in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttributeId, &[AttrValue])> {
        self.attrs.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Number of distinct attribute identifiers.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the context is empty.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute identifiers of a given category.
    pub fn ids_in_category(&self, category: Category) -> impl Iterator<Item = &AttributeId> {
        self.attrs.keys().filter(move |id| id.category == category)
    }

    /// Merges another context into this one (bags are concatenated).
    ///
    /// Used when a PIP contributes resolved attributes to a request.
    pub fn merge(&mut self, other: &RequestContext) {
        for (id, bag) in other.iter() {
            let entry = self.attrs.entry(id.clone()).or_default();
            entry.extend(bag.iter().cloned());
        }
    }

    /// Approximate serialized size in bytes (wire accounting).
    pub fn byte_len(&self) -> usize {
        self.attrs
            .iter()
            .map(|(id, bag)| id.name.len() + 2 + bag.iter().map(AttrValue::byte_len).sum::<usize>())
            .sum()
    }

    /// A canonical byte encoding used as a cache key and for signing.
    pub fn to_canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        for (id, bag) in &self.attrs {
            out.extend_from_slice(id.category.as_str().as_bytes());
            out.push(b'.');
            out.extend_from_slice(id.name.as_bytes());
            out.push(b'=');
            for v in bag {
                out.extend_from_slice(format!("{v}").as_bytes());
                out.push(b',');
            }
            out.push(b';');
        }
        out
    }

    /// FNV-1a (64-bit) over the same byte stream as
    /// [`RequestContext::to_canonical_bytes`], computed without
    /// materializing it. Two contexts with equal canonical bytes hash
    /// equal; hashed-key caches must still verify the full context on
    /// hit, since 64 bits cannot rule out collisions between distinct
    /// requests.
    pub fn canonical_hash(&self) -> u64 {
        use std::fmt::Write;
        let mut h = Fnv1a::new();
        for (id, bag) in &self.attrs {
            h.write_bytes(id.category.as_str().as_bytes());
            h.write_byte(b'.');
            h.write_bytes(id.name.as_bytes());
            h.write_byte(b'=');
            for v in bag {
                let _ = write!(h, "{v}");
                h.write_byte(b',');
            }
            h.write_byte(b';');
        }
        h.0
    }
}

/// Streaming FNV-1a 64 that accepts `fmt::Write`, so `Display`ed
/// attribute values feed the hash without an intermediate allocation.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    fn write_byte(&mut self, byte: u8) {
        self.0 ^= u64::from(byte);
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_byte(b);
        }
    }
}

impl std::fmt::Write for Fnv1a {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_sets_three_ids() {
        let req = RequestContext::basic("alice", "doc/1", "read");
        assert_eq!(req.subject_id(), Some("alice"));
        assert_eq!(req.resource_id(), Some("doc/1"));
        assert_eq!(req.action_id(), Some("read"));
        assert_eq!(req.len(), 3);
    }

    #[test]
    fn bags_are_multivalued() {
        let mut req = RequestContext::new();
        req.add(AttributeId::subject("role"), "doctor");
        req.add(AttributeId::subject("role"), "researcher");
        assert_eq!(req.bag(&AttributeId::subject("role")).len(), 2);
    }

    #[test]
    fn missing_bag_is_empty() {
        let req = RequestContext::new();
        assert!(req.bag(&AttributeId::subject("role")).is_empty());
        assert!(!req.contains(&AttributeId::subject("role")));
    }

    #[test]
    fn merge_concatenates_bags() {
        let mut a = RequestContext::new().with_subject_attr("role", "doctor");
        let b = RequestContext::new()
            .with_subject_attr("role", "admin")
            .with_env_attr("current-time", AttrValue::Time(100));
        a.merge(&b);
        assert_eq!(a.bag(&AttributeId::subject("role")).len(), 2);
        assert!(a.contains(&AttributeId::environment("current-time")));
    }

    #[test]
    fn canonical_bytes_deterministic_and_order_independent() {
        let mut a = RequestContext::new();
        a.add(AttributeId::subject("role"), "doctor");
        a.add(AttributeId::resource("type"), "ehr");
        let mut b = RequestContext::new();
        b.add(AttributeId::resource("type"), "ehr");
        b.add(AttributeId::subject("role"), "doctor");
        assert_eq!(a.to_canonical_bytes(), b.to_canonical_bytes());
    }

    #[test]
    fn canonical_hash_matches_fnv_of_canonical_bytes() {
        fn fnv(bytes: &[u8]) -> u64 {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        }
        let contexts = [
            RequestContext::new(),
            RequestContext::basic("alice", "ehr/record/42", "read"),
            RequestContext::basic("bob", "ehr/record/42", "write")
                .with_subject_attr("role", "doctor")
                .with_env_attr("current-time", AttrValue::Time(9 * 3_600_000))
                .with_resource_attr("sensitivity", 3i64),
        ];
        for ctx in &contexts {
            assert_eq!(ctx.canonical_hash(), fnv(&ctx.to_canonical_bytes()));
        }
        // Distinct requests should (overwhelmingly) hash differently.
        assert_ne!(contexts[1].canonical_hash(), contexts[2].canonical_hash());
    }

    #[test]
    fn category_filter() {
        let req = RequestContext::basic("u", "r", "a").with_env_attr("x", 1i64);
        assert_eq!(req.ids_in_category(Category::Environment).count(), 1);
        assert_eq!(req.ids_in_category(Category::Subject).count(), 1);
    }

    #[test]
    fn byte_len_grows_with_content() {
        let small = RequestContext::basic("u", "r", "a");
        let large = small.clone().with_subject_attr("role", "a-long-role-name");
        assert!(large.byte_len() > small.byte_len());
    }
}
