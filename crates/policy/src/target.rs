//! Targets: the indexable applicability test of rules, policies and
//! policy sets (XACML `<Target>`).
//!
//! A target is a conjunction of [`AnyOf`] clauses; each `AnyOf` is a
//! disjunction of [`AllOf`] clauses; each `AllOf` is a conjunction of
//! attribute [`AttrMatch`]es. An empty target matches every request.

use crate::attr::{AttrValue, AttributeId};
use crate::glob::glob_match;
use crate::request::RequestContext;
use serde::{Deserialize, Serialize};

/// Comparison operators usable in target matches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MatchOp {
    /// Type-strict equality.
    Equals,
    /// Glob match: the match value is the pattern, the request value the
    /// text.
    Glob,
    /// Attribute value strictly greater than the match value.
    GreaterThan,
    /// Attribute value greater than or equal to the match value.
    GreaterOrEqual,
    /// Attribute value strictly less than the match value.
    LessThan,
    /// Attribute value less than or equal to the match value.
    LessOrEqual,
    /// Attribute string contains the match string.
    Contains,
}

impl MatchOp {
    /// DSL symbol for the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            MatchOp::Equals => "==",
            MatchOp::Glob => "~=",
            MatchOp::GreaterThan => ">",
            MatchOp::GreaterOrEqual => ">=",
            MatchOp::LessThan => "<",
            MatchOp::LessOrEqual => "<=",
            MatchOp::Contains => "contains",
        }
    }
}

/// Result of evaluating a target against a request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchResult {
    /// The target applies to the request.
    Match,
    /// The target does not apply.
    NoMatch,
    /// The applicability could not be determined (type error).
    Indeterminate,
}

/// A single attribute match: `attr OP value`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AttrMatch {
    /// The request attribute examined.
    pub attr: AttributeId,
    /// The comparison operator.
    pub op: MatchOp,
    /// The literal value compared against.
    pub value: AttrValue,
}

impl AttrMatch {
    /// Creates an attribute match.
    pub fn new(attr: AttributeId, op: MatchOp, value: impl Into<AttrValue>) -> Self {
        AttrMatch {
            attr,
            op,
            value: value.into(),
        }
    }

    /// Equality match shorthand.
    pub fn equals(attr: AttributeId, value: impl Into<AttrValue>) -> Self {
        Self::new(attr, MatchOp::Equals, value)
    }

    /// Glob match shorthand (`value` is the pattern).
    pub fn glob(attr: AttributeId, pattern: impl Into<String>) -> Self {
        Self::new(attr, MatchOp::Glob, AttrValue::String(pattern.into()))
    }

    /// Evaluates this match against a request.
    ///
    /// A match succeeds if *any* value in the request's bag satisfies the
    /// operator (XACML match semantics). A missing attribute yields
    /// `NoMatch`; a type-incompatible comparison yields `Indeterminate`.
    pub fn evaluate(&self, request: &RequestContext) -> MatchResult {
        let bag = request.bag(&self.attr);
        if bag.is_empty() {
            return MatchResult::NoMatch;
        }
        let mut indeterminate = false;
        for v in bag {
            match self.matches_value(v) {
                Some(true) => return MatchResult::Match,
                Some(false) => {}
                None => indeterminate = true,
            }
        }
        if indeterminate {
            MatchResult::Indeterminate
        } else {
            MatchResult::NoMatch
        }
    }

    /// Applies the operator to a single request value. `None` = type
    /// error.
    pub fn matches_value(&self, request_value: &AttrValue) -> Option<bool> {
        use std::cmp::Ordering;
        match self.op {
            MatchOp::Equals => Some(request_value == &self.value),
            MatchOp::Glob => match (&self.value, request_value) {
                (AttrValue::String(pattern), AttrValue::String(text)) => {
                    Some(glob_match(pattern, text))
                }
                _ => None,
            },
            MatchOp::Contains => match (&self.value, request_value) {
                (AttrValue::String(needle), AttrValue::String(hay)) => Some(hay.contains(needle)),
                _ => None,
            },
            MatchOp::GreaterThan
            | MatchOp::GreaterOrEqual
            | MatchOp::LessThan
            | MatchOp::LessOrEqual => {
                let ord = request_value.partial_cmp_same_type(&self.value)?;
                Some(match self.op {
                    MatchOp::GreaterThan => ord == Ordering::Greater,
                    MatchOp::GreaterOrEqual => ord != Ordering::Less,
                    MatchOp::LessThan => ord == Ordering::Less,
                    MatchOp::LessOrEqual => ord != Ordering::Greater,
                    _ => unreachable!(),
                })
            }
        }
    }
}

/// Conjunction of attribute matches.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct AllOf {
    /// Matches that must all succeed.
    pub matches: Vec<AttrMatch>,
}

impl AllOf {
    /// Creates a conjunction from matches.
    pub fn new(matches: Vec<AttrMatch>) -> Self {
        AllOf { matches }
    }

    fn evaluate(&self, request: &RequestContext) -> MatchResult {
        let mut result = MatchResult::Match;
        for m in &self.matches {
            match m.evaluate(request) {
                MatchResult::Match => {}
                MatchResult::NoMatch => return MatchResult::NoMatch,
                MatchResult::Indeterminate => result = MatchResult::Indeterminate,
            }
        }
        result
    }
}

/// Disjunction of [`AllOf`] conjunctions.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct AnyOf {
    /// Alternatives; one must match.
    pub all_ofs: Vec<AllOf>,
}

impl AnyOf {
    /// Creates a disjunction from alternatives.
    pub fn new(all_ofs: Vec<AllOf>) -> Self {
        AnyOf { all_ofs }
    }

    fn evaluate(&self, request: &RequestContext) -> MatchResult {
        let mut result = MatchResult::NoMatch;
        for a in &self.all_ofs {
            match a.evaluate(request) {
                MatchResult::Match => return MatchResult::Match,
                MatchResult::NoMatch => {}
                MatchResult::Indeterminate => result = MatchResult::Indeterminate,
            }
        }
        result
    }
}

/// A full target: conjunction of [`AnyOf`] clauses. Empty = match all.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Target {
    /// Clauses that must all match.
    pub any_ofs: Vec<AnyOf>,
}

impl Target {
    /// The empty target, which matches every request.
    pub fn match_all() -> Self {
        Target::default()
    }

    /// A target that is a simple conjunction of matches.
    pub fn all(matches: Vec<AttrMatch>) -> Self {
        Target {
            any_ofs: matches
                .into_iter()
                .map(|m| AnyOf::new(vec![AllOf::new(vec![m])]))
                .collect(),
        }
    }

    /// Whether this target matches everything trivially.
    pub fn is_match_all(&self) -> bool {
        self.any_ofs.is_empty()
    }

    /// Evaluates the target against a request.
    pub fn evaluate(&self, request: &RequestContext) -> MatchResult {
        let mut result = MatchResult::Match;
        for any in &self.any_ofs {
            match any.evaluate(request) {
                MatchResult::Match => {}
                MatchResult::NoMatch => return MatchResult::NoMatch,
                MatchResult::Indeterminate => result = MatchResult::Indeterminate,
            }
        }
        result
    }

    /// All attribute matches mentioned anywhere in the target (used by
    /// conflict analysis and target indexing).
    pub fn all_matches(&self) -> impl Iterator<Item = &AttrMatch> {
        self.any_ofs
            .iter()
            .flat_map(|any| any.all_ofs.iter())
            .flat_map(|all| all.matches.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> RequestContext {
        RequestContext::basic("alice", "ehr/records/42", "read")
            .with_subject_attr("role", "doctor")
            .with_subject_attr("age", 42i64)
    }

    #[test]
    fn empty_target_matches_all() {
        assert_eq!(Target::match_all().evaluate(&req()), MatchResult::Match);
        assert!(Target::match_all().is_match_all());
    }

    #[test]
    fn equality_match() {
        let t = Target::all(vec![AttrMatch::equals(
            AttributeId::subject("role"),
            "doctor",
        )]);
        assert_eq!(t.evaluate(&req()), MatchResult::Match);
        let t = Target::all(vec![AttrMatch::equals(
            AttributeId::subject("role"),
            "nurse",
        )]);
        assert_eq!(t.evaluate(&req()), MatchResult::NoMatch);
    }

    #[test]
    fn glob_match_on_resource() {
        let t = Target::all(vec![AttrMatch::glob(
            AttributeId::resource("id"),
            "ehr/records/*",
        )]);
        assert_eq!(t.evaluate(&req()), MatchResult::Match);
        let t = Target::all(vec![AttrMatch::glob(AttributeId::resource("id"), "lab/*")]);
        assert_eq!(t.evaluate(&req()), MatchResult::NoMatch);
    }

    #[test]
    fn missing_attribute_is_no_match() {
        let t = Target::all(vec![AttrMatch::equals(
            AttributeId::subject("clearance"),
            "secret",
        )]);
        assert_eq!(t.evaluate(&req()), MatchResult::NoMatch);
    }

    #[test]
    fn type_error_is_indeterminate() {
        // Glob against an integer attribute value.
        let t = Target::all(vec![AttrMatch::glob(AttributeId::subject("age"), "4*")]);
        assert_eq!(t.evaluate(&req()), MatchResult::Indeterminate);
    }

    #[test]
    fn ordering_matches() {
        let t = Target::all(vec![AttrMatch::new(
            AttributeId::subject("age"),
            MatchOp::GreaterOrEqual,
            18i64,
        )]);
        assert_eq!(t.evaluate(&req()), MatchResult::Match);
        let t = Target::all(vec![AttrMatch::new(
            AttributeId::subject("age"),
            MatchOp::LessThan,
            18i64,
        )]);
        assert_eq!(t.evaluate(&req()), MatchResult::NoMatch);
    }

    #[test]
    fn disjunction_within_any_of() {
        let t = Target {
            any_ofs: vec![AnyOf::new(vec![
                AllOf::new(vec![AttrMatch::equals(
                    AttributeId::subject("role"),
                    "admin",
                )]),
                AllOf::new(vec![AttrMatch::equals(
                    AttributeId::subject("role"),
                    "doctor",
                )]),
            ])],
        };
        assert_eq!(t.evaluate(&req()), MatchResult::Match);
    }

    #[test]
    fn conjunction_across_any_ofs() {
        let t = Target::all(vec![
            AttrMatch::equals(AttributeId::subject("role"), "doctor"),
            AttrMatch::equals(AttributeId::action("id"), "write"),
        ]);
        // role matches but action doesn't.
        assert_eq!(t.evaluate(&req()), MatchResult::NoMatch);
    }

    #[test]
    fn bag_semantics_any_value_matches() {
        let mut r = req();
        r.add(AttributeId::subject("role"), "researcher");
        let t = Target::all(vec![AttrMatch::equals(
            AttributeId::subject("role"),
            "researcher",
        )]);
        assert_eq!(t.evaluate(&r), MatchResult::Match);
    }

    #[test]
    fn contains_operator() {
        let t = Target::all(vec![AttrMatch::new(
            AttributeId::resource("id"),
            MatchOp::Contains,
            "records",
        )]);
        assert_eq!(t.evaluate(&req()), MatchResult::Match);
    }

    #[test]
    fn all_matches_iterates_everything() {
        let t = Target::all(vec![
            AttrMatch::equals(AttributeId::subject("role"), "doctor"),
            AttrMatch::equals(AttributeId::action("id"), "read"),
        ]);
        assert_eq!(t.all_matches().count(), 2);
    }
}
