//! # dacs-rbac
//!
//! RBAC96-style role-based access control (Sandhu et al.), the access
//! control *model* the paper singles out as "well suited for distributed
//! environments that need to address protection requirements for a large
//! base of subjects and objects" (§2.2).
//!
//! Implements:
//! * users, roles, permissions (action + resource glob)
//! * role hierarchies (a senior role inherits its juniors' permissions),
//!   with cycle prevention
//! * static separation of duty (SSD) enforced at assignment time
//! * sessions with dynamic separation of duty (DSD) enforced at role
//!   activation
//! * access review (users-of-role, permissions-of-user)
//!
//! The [`Rbac::authorized_roles`] closure is what the PIP exposes to the
//! policy engine as the `subject.role` attribute bag, bridging the model
//! level to the policy level exactly as §2.2 describes.
//!
//! # Examples
//!
//! ```
//! use dacs_rbac::{Permission, Rbac};
//!
//! let mut rbac = Rbac::new();
//! rbac.add_role("doctor");
//! rbac.add_role("chief");
//! rbac.add_inheritance("chief", "doctor")?;
//! rbac.grant("doctor", Permission::new("read", "ehr/*"))?;
//! rbac.add_user("alice");
//! rbac.assign("alice", "chief")?;
//! assert!(rbac.check("alice", "read", "ehr/42"));
//! # Ok::<(), dacs_rbac::RbacError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dacs_policy::glob::glob_match;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// A permission: an action on resources matching a glob pattern.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Permission {
    /// Action identifier, e.g. `"read"`.
    pub action: String,
    /// Resource pattern, e.g. `"ehr/records/*"`.
    pub resource: String,
}

impl Permission {
    /// Creates a permission.
    pub fn new(action: impl Into<String>, resource: impl Into<String>) -> Self {
        Permission {
            action: action.into(),
            resource: resource.into(),
        }
    }

    /// Whether this permission authorizes `action` on `resource`.
    pub fn covers(&self, action: &str, resource: &str) -> bool {
        self.action == action && glob_match(&self.resource, resource)
    }
}

/// A separation-of-duty constraint over a role set.
///
/// At most `limit` roles from `roles` may be simultaneously assigned to
/// one user (SSD) or activated in one session (DSD).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SodConstraint {
    /// Constraint name, for diagnostics and audit.
    pub name: String,
    /// The mutually-constrained role set.
    pub roles: BTreeSet<String>,
    /// Maximum number of roles from the set one user/session may hold.
    pub limit: usize,
}

impl SodConstraint {
    /// Creates a constraint.
    pub fn new(
        name: impl Into<String>,
        roles: impl IntoIterator<Item = String>,
        limit: usize,
    ) -> Self {
        SodConstraint {
            name: name.into(),
            roles: roles.into_iter().collect(),
            limit,
        }
    }

    fn violated_by(&self, held: &BTreeSet<String>) -> bool {
        held.intersection(&self.roles).count() > self.limit
    }
}

/// Errors from RBAC administration and session operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RbacError {
    /// Referenced user does not exist.
    UnknownUser(String),
    /// Referenced role does not exist.
    UnknownRole(String),
    /// Adding this inheritance edge would create a cycle.
    HierarchyCycle {
        /// The proposed senior role.
        senior: String,
        /// The proposed junior role.
        junior: String,
    },
    /// Assignment would violate a static separation-of-duty constraint.
    SsdViolation {
        /// The violated constraint.
        constraint: String,
        /// The user affected.
        user: String,
    },
    /// Activation would violate a dynamic separation-of-duty constraint.
    DsdViolation {
        /// The violated constraint.
        constraint: String,
    },
    /// Session tried to activate a role the user is not authorized for.
    RoleNotAuthorized {
        /// The offending role.
        role: String,
    },
}

impl std::fmt::Display for RbacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RbacError::UnknownUser(u) => write!(f, "unknown user {u}"),
            RbacError::UnknownRole(r) => write!(f, "unknown role {r}"),
            RbacError::HierarchyCycle { senior, junior } => {
                write!(f, "inheritance {senior} -> {junior} would create a cycle")
            }
            RbacError::SsdViolation { constraint, user } => {
                write!(
                    f,
                    "static separation-of-duty {constraint} violated for {user}"
                )
            }
            RbacError::DsdViolation { constraint } => {
                write!(f, "dynamic separation-of-duty {constraint} violated")
            }
            RbacError::RoleNotAuthorized { role } => {
                write!(f, "role {role} is not authorized for this user")
            }
        }
    }
}

impl std::error::Error for RbacError {}

/// A user session with a set of activated roles (RBAC96 sessions).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Session {
    /// Session id.
    pub id: u64,
    /// The owning user.
    pub user: String,
    /// Roles currently activated (closure not included; checks expand).
    pub active_roles: BTreeSet<String>,
}

/// The RBAC model state for one administrative domain.
#[derive(Debug, Default)]
pub struct Rbac {
    users: BTreeSet<String>,
    roles: BTreeSet<String>,
    assignments: BTreeMap<String, BTreeSet<String>>,
    permissions: BTreeMap<String, BTreeSet<Permission>>,
    /// senior → direct juniors (senior inherits junior permissions).
    juniors: BTreeMap<String, BTreeSet<String>>,
    ssd: Vec<SodConstraint>,
    dsd: Vec<SodConstraint>,
    next_session: u64,
    closure_cache: RwLock<Option<HashMap<String, Arc<BTreeSet<String>>>>>,
}

impl Rbac {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    fn invalidate(&mut self) {
        *self.closure_cache.write() = None;
    }

    /// Adds a user (idempotent).
    pub fn add_user(&mut self, user: impl Into<String>) {
        self.users.insert(user.into());
    }

    /// Adds a role (idempotent).
    pub fn add_role(&mut self, role: impl Into<String>) {
        self.roles.insert(role.into());
        self.invalidate();
    }

    /// Grants a permission to a role.
    ///
    /// # Errors
    ///
    /// [`RbacError::UnknownRole`] if the role does not exist.
    pub fn grant(&mut self, role: &str, permission: Permission) -> Result<(), RbacError> {
        if !self.roles.contains(role) {
            return Err(RbacError::UnknownRole(role.to_owned()));
        }
        self.permissions
            .entry(role.to_owned())
            .or_default()
            .insert(permission);
        Ok(())
    }

    /// Adds an inheritance edge: `senior` inherits `junior`'s
    /// permissions.
    ///
    /// # Errors
    ///
    /// [`RbacError::UnknownRole`] for missing roles and
    /// [`RbacError::HierarchyCycle`] if the edge would create a cycle.
    pub fn add_inheritance(&mut self, senior: &str, junior: &str) -> Result<(), RbacError> {
        for r in [senior, junior] {
            if !self.roles.contains(r) {
                return Err(RbacError::UnknownRole(r.to_owned()));
            }
        }
        // A cycle appears iff senior is reachable (junior-wards) from junior.
        if senior == junior || self.reachable(junior, senior) {
            return Err(RbacError::HierarchyCycle {
                senior: senior.to_owned(),
                junior: junior.to_owned(),
            });
        }
        self.juniors
            .entry(senior.to_owned())
            .or_default()
            .insert(junior.to_owned());
        self.invalidate();
        Ok(())
    }

    fn reachable(&self, from: &str, to: &str) -> bool {
        let mut stack = vec![from.to_owned()];
        let mut seen = BTreeSet::new();
        while let Some(r) = stack.pop() {
            if r == to {
                return true;
            }
            if !seen.insert(r.clone()) {
                continue;
            }
            if let Some(js) = self.juniors.get(&r) {
                stack.extend(js.iter().cloned());
            }
        }
        false
    }

    /// Registers a static separation-of-duty constraint.
    pub fn add_ssd(&mut self, constraint: SodConstraint) {
        self.ssd.push(constraint);
    }

    /// Registers a dynamic separation-of-duty constraint.
    pub fn add_dsd(&mut self, constraint: SodConstraint) {
        self.dsd.push(constraint);
    }

    /// Assigns a role to a user, enforcing SSD over the *closure* of the
    /// user's roles (inherited roles count).
    ///
    /// # Errors
    ///
    /// [`RbacError::UnknownUser`], [`RbacError::UnknownRole`] or
    /// [`RbacError::SsdViolation`].
    pub fn assign(&mut self, user: &str, role: &str) -> Result<(), RbacError> {
        if !self.users.contains(user) {
            return Err(RbacError::UnknownUser(user.to_owned()));
        }
        if !self.roles.contains(role) {
            return Err(RbacError::UnknownRole(role.to_owned()));
        }
        let mut would_have: BTreeSet<String> =
            self.assignments.get(user).cloned().unwrap_or_default();
        would_have.insert(role.to_owned());
        // Expand closure for SSD purposes.
        let mut expanded = BTreeSet::new();
        for r in &would_have {
            expanded.extend(self.role_closure(r).iter().cloned());
        }
        for c in &self.ssd {
            if c.violated_by(&expanded) {
                return Err(RbacError::SsdViolation {
                    constraint: c.name.clone(),
                    user: user.to_owned(),
                });
            }
        }
        self.assignments
            .entry(user.to_owned())
            .or_default()
            .insert(role.to_owned());
        Ok(())
    }

    /// Removes a role assignment (idempotent).
    pub fn revoke(&mut self, user: &str, role: &str) {
        if let Some(set) = self.assignments.get_mut(user) {
            set.remove(role);
        }
    }

    /// The role plus every junior it transitively inherits.
    pub fn role_closure(&self, role: &str) -> Arc<BTreeSet<String>> {
        {
            let cache = self.closure_cache.read();
            if let Some(map) = cache.as_ref() {
                if let Some(c) = map.get(role) {
                    return c.clone();
                }
            }
        }
        let mut cache = self.closure_cache.write();
        let map = cache.get_or_insert_with(HashMap::new);
        if let Some(c) = map.get(role) {
            return c.clone();
        }
        let mut closure = BTreeSet::new();
        let mut stack = vec![role.to_owned()];
        while let Some(r) = stack.pop() {
            if !closure.insert(r.clone()) {
                continue;
            }
            if let Some(js) = self.juniors.get(&r) {
                stack.extend(js.iter().cloned());
            }
        }
        let arc = Arc::new(closure);
        map.insert(role.to_owned(), arc.clone());
        arc
    }

    /// All roles a user holds, directly or through inheritance.
    pub fn authorized_roles(&self, user: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        if let Some(assigned) = self.assignments.get(user) {
            for r in assigned {
                out.extend(self.role_closure(r).iter().cloned());
            }
        }
        out
    }

    /// Whether `user` may perform `action` on `resource`.
    pub fn check(&self, user: &str, action: &str, resource: &str) -> bool {
        for role in self.authorized_roles(user) {
            if let Some(perms) = self.permissions.get(&role) {
                if perms.iter().any(|p| p.covers(action, resource)) {
                    return true;
                }
            }
        }
        false
    }

    /// Creates a session with an initial set of activated roles.
    ///
    /// # Errors
    ///
    /// [`RbacError::UnknownUser`], [`RbacError::RoleNotAuthorized`] or
    /// [`RbacError::DsdViolation`].
    pub fn create_session(
        &mut self,
        user: &str,
        activate: impl IntoIterator<Item = String>,
    ) -> Result<Session, RbacError> {
        if !self.users.contains(user) {
            return Err(RbacError::UnknownUser(user.to_owned()));
        }
        self.next_session += 1;
        let mut session = Session {
            id: self.next_session,
            user: user.to_owned(),
            active_roles: BTreeSet::new(),
        };
        for role in activate {
            self.activate_role(&mut session, &role)?;
        }
        Ok(session)
    }

    /// Activates an additional role within a session, enforcing DSD.
    ///
    /// # Errors
    ///
    /// [`RbacError::RoleNotAuthorized`] or [`RbacError::DsdViolation`].
    pub fn activate_role(&self, session: &mut Session, role: &str) -> Result<(), RbacError> {
        let authorized = self.authorized_roles(&session.user);
        if !authorized.contains(role) {
            return Err(RbacError::RoleNotAuthorized {
                role: role.to_owned(),
            });
        }
        let mut would_be = session.active_roles.clone();
        would_be.insert(role.to_owned());
        // DSD over the closure of activated roles.
        let mut expanded = BTreeSet::new();
        for r in &would_be {
            expanded.extend(self.role_closure(r).iter().cloned());
        }
        for c in &self.dsd {
            if c.violated_by(&expanded) {
                return Err(RbacError::DsdViolation {
                    constraint: c.name.clone(),
                });
            }
        }
        session.active_roles = would_be;
        Ok(())
    }

    /// Deactivates a role within a session (idempotent).
    pub fn deactivate_role(&self, session: &mut Session, role: &str) {
        session.active_roles.remove(role);
    }

    /// Whether the session's activated roles permit the access.
    pub fn session_check(&self, session: &Session, action: &str, resource: &str) -> bool {
        for role in &session.active_roles {
            for r in self.role_closure(role).iter() {
                if let Some(perms) = self.permissions.get(r) {
                    if perms.iter().any(|p| p.covers(action, resource)) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Access review: every user authorized for `role` (directly or via
    /// a senior role).
    pub fn users_with_role(&self, role: &str) -> Vec<&str> {
        self.assignments
            .iter()
            .filter(|(_, roles)| roles.iter().any(|r| self.role_closure(r).contains(role)))
            .map(|(u, _)| u.as_str())
            .collect()
    }

    /// Access review: the effective permission set of a user.
    pub fn permissions_of(&self, user: &str) -> BTreeSet<Permission> {
        let mut out = BTreeSet::new();
        for role in self.authorized_roles(user) {
            if let Some(perms) = self.permissions.get(&role) {
                out.extend(perms.iter().cloned());
            }
        }
        out
    }

    /// Numbers of users and roles (scale metrics).
    pub fn size(&self) -> (usize, usize) {
        (self.users.len(), self.roles.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hospital() -> Rbac {
        let mut r = Rbac::new();
        for role in ["staff", "nurse", "doctor", "chief", "auditor", "pharmacist"] {
            r.add_role(role);
        }
        // chief > doctor > staff; nurse > staff.
        r.add_inheritance("doctor", "staff").unwrap();
        r.add_inheritance("chief", "doctor").unwrap();
        r.add_inheritance("nurse", "staff").unwrap();
        r.grant("staff", Permission::new("read", "bulletin/*"))
            .unwrap();
        r.grant("doctor", Permission::new("read", "ehr/*")).unwrap();
        r.grant("doctor", Permission::new("write", "ehr/*/notes"))
            .unwrap();
        r.grant("chief", Permission::new("approve", "ehr/*"))
            .unwrap();
        r.grant("auditor", Permission::new("read", "audit/*"))
            .unwrap();
        for u in ["alice", "bob", "carol"] {
            r.add_user(u);
        }
        r
    }

    #[test]
    fn direct_permission_check() {
        let mut r = hospital();
        r.assign("alice", "doctor").unwrap();
        assert!(r.check("alice", "read", "ehr/42"));
        assert!(!r.check("alice", "approve", "ehr/42"));
        assert!(!r.check("bob", "read", "ehr/42"));
    }

    #[test]
    fn inheritance_grants_junior_permissions() {
        let mut r = hospital();
        r.assign("alice", "chief").unwrap();
        // chief inherits doctor and staff permissions transitively.
        assert!(r.check("alice", "read", "ehr/42"));
        assert!(r.check("alice", "read", "bulletin/today"));
        assert!(r.check("alice", "approve", "ehr/42"));
    }

    #[test]
    fn cycle_rejected() {
        let mut r = hospital();
        assert_eq!(
            r.add_inheritance("staff", "chief"),
            Err(RbacError::HierarchyCycle {
                senior: "staff".into(),
                junior: "chief".into()
            })
        );
        assert!(matches!(
            r.add_inheritance("doctor", "doctor"),
            Err(RbacError::HierarchyCycle { .. })
        ));
    }

    #[test]
    fn unknown_entities_rejected() {
        let mut r = hospital();
        assert_eq!(
            r.assign("nobody", "doctor"),
            Err(RbacError::UnknownUser("nobody".into()))
        );
        assert_eq!(
            r.assign("alice", "wizard"),
            Err(RbacError::UnknownRole("wizard".into()))
        );
        assert_eq!(
            r.grant("wizard", Permission::new("a", "b")),
            Err(RbacError::UnknownRole("wizard".into()))
        );
    }

    #[test]
    fn ssd_blocks_conflicting_assignment() {
        let mut r = hospital();
        r.add_ssd(SodConstraint::new(
            "no-doctor-and-auditor",
            ["doctor".to_string(), "auditor".to_string()],
            1,
        ));
        r.assign("alice", "doctor").unwrap();
        assert_eq!(
            r.assign("alice", "auditor"),
            Err(RbacError::SsdViolation {
                constraint: "no-doctor-and-auditor".into(),
                user: "alice".into()
            })
        );
        // Other users unaffected.
        r.assign("bob", "auditor").unwrap();
    }

    #[test]
    fn ssd_counts_inherited_roles() {
        let mut r = hospital();
        r.add_ssd(SodConstraint::new(
            "no-doctor-and-auditor",
            ["doctor".to_string(), "auditor".to_string()],
            1,
        ));
        // chief inherits doctor, so chief + auditor also violates.
        r.assign("alice", "chief").unwrap();
        assert!(matches!(
            r.assign("alice", "auditor"),
            Err(RbacError::SsdViolation { .. })
        ));
    }

    #[test]
    fn sessions_and_dsd() {
        let mut r = hospital();
        r.add_dsd(SodConstraint::new(
            "not-both-at-once",
            ["doctor".to_string(), "pharmacist".to_string()],
            1,
        ));
        r.assign("alice", "doctor").unwrap();
        r.assign("alice", "pharmacist").unwrap(); // SSD allows both
        let mut s = r.create_session("alice", ["doctor".to_string()]).unwrap();
        // Activating pharmacist in the same session violates DSD.
        assert_eq!(
            r.activate_role(&mut s, "pharmacist"),
            Err(RbacError::DsdViolation {
                constraint: "not-both-at-once".into()
            })
        );
        // Deactivate, then it works.
        r.deactivate_role(&mut s, "doctor");
        r.activate_role(&mut s, "pharmacist").unwrap();
    }

    #[test]
    fn session_checks_use_active_roles_only() {
        let mut r = hospital();
        r.assign("alice", "doctor").unwrap();
        r.assign("alice", "auditor").unwrap();
        let s = r.create_session("alice", ["auditor".to_string()]).unwrap();
        assert!(r.session_check(&s, "read", "audit/log-1"));
        // doctor not activated: least privilege.
        assert!(!r.session_check(&s, "read", "ehr/42"));
    }

    #[test]
    fn session_cannot_activate_unauthorized_role() {
        let mut r = hospital();
        r.assign("alice", "nurse").unwrap();
        assert_eq!(
            r.create_session("alice", ["doctor".to_string()])
                .unwrap_err(),
            RbacError::RoleNotAuthorized {
                role: "doctor".into()
            }
        );
    }

    #[test]
    fn access_review() {
        let mut r = hospital();
        r.assign("alice", "chief").unwrap();
        r.assign("bob", "doctor").unwrap();
        let mut users = r.users_with_role("doctor");
        users.sort();
        assert_eq!(users, vec!["alice", "bob"]); // chief inherits doctor
        let perms = r.permissions_of("bob");
        assert!(perms.contains(&Permission::new("read", "ehr/*")));
        assert!(perms.contains(&Permission::new("read", "bulletin/*")));
        assert!(!perms.contains(&Permission::new("approve", "ehr/*")));
    }

    #[test]
    fn revoke_removes_access() {
        let mut r = hospital();
        r.assign("alice", "doctor").unwrap();
        assert!(r.check("alice", "read", "ehr/1"));
        r.revoke("alice", "doctor");
        assert!(!r.check("alice", "read", "ehr/1"));
    }

    #[test]
    fn closure_cache_consistent_after_mutation() {
        let mut r = hospital();
        r.assign("alice", "doctor").unwrap();
        assert!(r.check("alice", "read", "ehr/1"));
        // Mutating the hierarchy invalidates cached closures.
        r.add_role("intern");
        r.add_inheritance("intern", "staff").unwrap();
        r.add_user("dave");
        r.assign("dave", "intern").unwrap();
        assert!(r.check("dave", "read", "bulletin/x"));
        assert!(!r.check("dave", "read", "ehr/1"));
    }

    #[test]
    fn glob_permissions() {
        let mut r = Rbac::new();
        r.add_role("reader");
        r.add_user("u");
        r.grant("reader", Permission::new("read", "docs/*/public"))
            .unwrap();
        r.assign("u", "reader").unwrap();
        assert!(r.check("u", "read", "docs/team-a/public"));
        assert!(!r.check("u", "read", "docs/team-a/private"));
    }

    #[test]
    fn size_reports_scale() {
        let r = hospital();
        let (users, roles) = r.size();
        assert_eq!(users, 3);
        assert_eq!(roles, 6);
    }
}
