//! # dacs-simnet
//!
//! A deterministic, event-driven network simulator: the testbed
//! substrate for every communication-performance experiment in the DACS
//! reproduction (§3.2 "Communication Performance" of the DSN 2008
//! paper).
//!
//! The paper's claims are about *message counts*, *message sizes* and
//! *round trips* between distributed authorization components. A
//! discrete-event simulation measures exactly those quantities
//! reproducibly: virtual clock in microseconds, per-link latency /
//! bandwidth / jitter / loss, seeded randomness, and per-link statistics.
//!
//! # Examples
//!
//! ```
//! use dacs_simnet::{LinkSpec, Network};
//!
//! let mut net: Network<&'static str> = Network::new(7);
//! let pep = net.add_node("pep.hospital-a");
//! let pdp = net.add_node("pdp.hospital-a");
//! net.set_link(pep, pdp, LinkSpec::lan());
//! net.send(pep, pdp, 512, "decision query");
//! let delivery = net.next_event().expect("one message in flight");
//! assert_eq!(delivery.payload, "decision query");
//! assert!(net.now() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Identifies a node in the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Link characteristics between two nodes (directed).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LinkSpec {
    /// Propagation delay in microseconds.
    pub latency_us: u64,
    /// Uniform jitter added on top, `[0, jitter_us]` microseconds.
    pub jitter_us: u64,
    /// Serialization bandwidth in bytes/second (`None` = infinite).
    pub bandwidth_bps: Option<u64>,
    /// Probability a message is silently dropped, `[0, 1)`.
    pub loss: f64,
}

impl LinkSpec {
    /// A same-rack LAN link: 100 µs, no jitter, 1 GB/s.
    pub fn lan() -> Self {
        LinkSpec {
            latency_us: 100,
            jitter_us: 20,
            bandwidth_bps: Some(1_000_000_000),
            loss: 0.0,
        }
    }

    /// An inter-domain WAN link: 20 ms, 2 ms jitter, 100 MB/s.
    pub fn wan() -> Self {
        LinkSpec {
            latency_us: 20_000,
            jitter_us: 2_000,
            bandwidth_bps: Some(100_000_000),
            loss: 0.0,
        }
    }

    /// A lossy WAN link.
    pub fn wan_lossy(loss: f64) -> Self {
        LinkSpec {
            loss,
            ..Self::wan()
        }
    }

    /// An instantaneous link (for logic-only tests).
    pub fn instant() -> Self {
        LinkSpec {
            latency_us: 0,
            jitter_us: 0,
            bandwidth_bps: None,
            loss: 0.0,
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::lan()
    }
}

/// A message delivered to a node.
#[derive(Clone, PartialEq, Debug)]
pub struct Delivery<M> {
    /// Simulation time of delivery, in microseconds.
    pub at: u64,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Unique message id.
    pub msg_id: u64,
    /// Modelled message size in bytes.
    pub size: usize,
    /// The payload.
    pub payload: M,
}

/// Aggregate statistics for one direction of one link.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LinkStats {
    /// Messages accepted onto the link.
    pub messages: u64,
    /// Bytes accepted onto the link.
    pub bytes: u64,
    /// Messages lost.
    pub dropped: u64,
}

/// Aggregate statistics for the whole network.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NetStats {
    /// Messages sent (including later-dropped ones).
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages dropped by lossy links.
    pub messages_dropped: u64,
    /// Total bytes sent.
    pub bytes_sent: u64,
}

#[derive(Debug)]
struct Event<M> {
    at: u64,
    seq: u64, // tie-break for determinism
    delivery: Delivery<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulated network.
///
/// `M` is the application payload type (the protocol enum of the layer
/// above). All behaviour is deterministic given the seed.
#[derive(Debug)]
pub struct Network<M> {
    clock: u64,
    names: Vec<String>,
    links: HashMap<(NodeId, NodeId), LinkSpec>,
    default_link: LinkSpec,
    queue: BinaryHeap<Reverse<Event<M>>>,
    rng: StdRng,
    next_msg: u64,
    next_seq: u64,
    link_stats: HashMap<(NodeId, NodeId), LinkStats>,
    stats: NetStats,
}

impl<M> Network<M> {
    /// Creates an empty network with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Network {
            clock: 0,
            names: Vec::new(),
            links: HashMap::new(),
            default_link: LinkSpec::default(),
            queue: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(seed),
            next_msg: 0,
            next_seq: 0,
            link_stats: HashMap::new(),
            stats: NetStats::default(),
        }
    }

    /// Registers a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.into());
        id
    }

    /// The registered name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id was not created by this network.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Sets the directed link spec from `a` to `b`.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.links.insert((a, b), spec);
    }

    /// Sets the link spec in both directions.
    pub fn set_link_bidir(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.set_link(a, b, spec);
        self.set_link(b, a, spec);
    }

    /// Sets the spec used for node pairs without an explicit link.
    pub fn set_default_link(&mut self, spec: LinkSpec) {
        self.default_link = spec;
    }

    /// Current simulation time in microseconds.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Global statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Statistics for the directed link `a → b`.
    pub fn link_stats(&self, a: NodeId, b: NodeId) -> LinkStats {
        self.link_stats.get(&(a, b)).copied().unwrap_or_default()
    }

    /// Sends a message of `size` bytes; returns its id, or `None` if the
    /// link dropped it.
    pub fn send(&mut self, from: NodeId, to: NodeId, size: usize, payload: M) -> Option<u64> {
        self.send_after(0, from, to, size, payload)
    }

    /// Sends after an explicit local processing delay (microseconds).
    pub fn send_after(
        &mut self,
        delay_us: u64,
        from: NodeId,
        to: NodeId,
        size: usize,
        payload: M,
    ) -> Option<u64> {
        let spec = self
            .links
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link);
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += size as u64;
        let ls = self.link_stats.entry((from, to)).or_default();
        ls.messages += 1;
        ls.bytes += size as u64;

        if spec.loss > 0.0 && self.rng.gen::<f64>() < spec.loss {
            self.stats.messages_dropped += 1;
            self.link_stats.entry((from, to)).or_default().dropped += 1;
            return None;
        }

        let serialize_us = spec
            .bandwidth_bps
            .map(|bps| (size as u64).saturating_mul(1_000_000) / bps.max(1))
            .unwrap_or(0);
        let jitter = if spec.jitter_us > 0 {
            self.rng.gen_range(0..=spec.jitter_us)
        } else {
            0
        };
        let at = self.clock + delay_us + spec.latency_us + serialize_us + jitter;

        let msg_id = self.next_msg;
        self.next_msg += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Event {
            at,
            seq,
            delivery: Delivery {
                at,
                from,
                to,
                msg_id,
                size,
                payload,
            },
        }));
        Some(msg_id)
    }

    /// Pops the next delivery, advancing the clock to its time.
    pub fn next_event(&mut self) -> Option<Delivery<M>> {
        let Reverse(ev) = self.queue.pop()?;
        self.clock = ev.at;
        self.stats.messages_delivered += 1;
        Some(ev.delivery)
    }

    /// Number of messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Runs the event loop to completion: each delivery is handed to
    /// `handler`, which may send further messages.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, Delivery<M>)) {
        while let Some(ev) = self.next_event() {
            handler(self, ev);
        }
    }

    /// Runs until the given simulation time (exclusive); events at or
    /// after `until_us` stay queued and the clock stops at `until_us`.
    pub fn run_until(&mut self, until_us: u64, mut handler: impl FnMut(&mut Self, Delivery<M>)) {
        loop {
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.at < until_us => {
                    let ev = self.next_event().expect("peeked");
                    handler(self, ev);
                }
                _ => break,
            }
        }
        self.clock = self.clock.max(until_us);
    }

    /// Advances the clock without processing events (idle time).
    pub fn advance_to(&mut self, t_us: u64) {
        self.clock = self.clock.max(t_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_nodes(seed: u64, spec: LinkSpec) -> (Network<u32>, NodeId, NodeId) {
        let mut net = Network::new(seed);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.set_link_bidir(a, b, spec);
        (net, a, b)
    }

    #[test]
    fn delivery_order_is_time_order() {
        let (mut net, a, b) = two_nodes(1, LinkSpec::instant());
        // Slow explicit delay first, then a fast one.
        net.send_after(1000, a, b, 10, 1);
        net.send_after(10, a, b, 10, 2);
        assert_eq!(net.next_event().unwrap().payload, 2);
        assert_eq!(net.next_event().unwrap().payload, 1);
        assert_eq!(net.next_event(), None);
    }

    #[test]
    fn clock_advances_with_latency() {
        let (mut net, a, b) = two_nodes(
            2,
            LinkSpec {
                latency_us: 500,
                jitter_us: 0,
                bandwidth_bps: None,
                loss: 0.0,
            },
        );
        net.send(a, b, 100, 1);
        let d = net.next_event().unwrap();
        assert_eq!(d.at, 500);
        assert_eq!(net.now(), 500);
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        let spec = LinkSpec {
            latency_us: 0,
            jitter_us: 0,
            bandwidth_bps: Some(1_000_000), // 1 MB/s → 1 µs per byte
            loss: 0.0,
        };
        let (mut net, a, b) = two_nodes(3, spec);
        net.send(a, b, 1000, 1);
        let d = net.next_event().unwrap();
        assert_eq!(d.at, 1000);
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let (mut net, a, b) = two_nodes(4, LinkSpec::wan_lossy(0.5));
        let mut delivered = 0;
        let n = 1000;
        for i in 0..n {
            net.send(a, b, 10, i);
        }
        while net.next_event().is_some() {
            delivered += 1;
        }
        let stats = net.stats();
        assert_eq!(stats.messages_sent, n as u64);
        assert_eq!(stats.messages_dropped + delivered, n as u64);
        // ~50% loss with generous tolerance.
        assert!(
            (350..=650).contains(&delivered),
            "delivered {delivered} out of {n}"
        );

        // Determinism: same seed, same outcome.
        let (mut net2, a2, b2) = two_nodes(4, LinkSpec::wan_lossy(0.5));
        for i in 0..n {
            net2.send(a2, b2, 10, i);
        }
        let mut delivered2 = 0;
        while net2.next_event().is_some() {
            delivered2 += 1;
        }
        assert_eq!(delivered, delivered2);
    }

    #[test]
    fn stats_track_bytes_and_links() {
        let (mut net, a, b) = two_nodes(5, LinkSpec::lan());
        net.send(a, b, 100, 1);
        net.send(a, b, 200, 2);
        net.send(b, a, 50, 3);
        assert_eq!(net.stats().bytes_sent, 350);
        assert_eq!(net.link_stats(a, b).messages, 2);
        assert_eq!(net.link_stats(a, b).bytes, 300);
        assert_eq!(net.link_stats(b, a).messages, 1);
    }

    #[test]
    fn run_processes_cascading_sends() {
        let (mut net, a, b) = two_nodes(6, LinkSpec::instant());
        net.send(a, b, 10, 0);
        let mut seen = Vec::new();
        net.run(|net, d| {
            seen.push(d.payload);
            if d.payload < 3 {
                net.send(d.to, d.from, 10, d.payload + 1);
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let (mut net, a, b) = two_nodes(
            7,
            LinkSpec {
                latency_us: 1000,
                jitter_us: 0,
                bandwidth_bps: None,
                loss: 0.0,
            },
        );
        net.send(a, b, 10, 1);
        net.send_after(5_000, a, b, 10, 2);
        let mut seen = Vec::new();
        net.run_until(2_000, |_net, d| seen.push(d.payload));
        assert_eq!(seen, vec![1]);
        assert_eq!(net.now(), 2_000);
        assert_eq!(net.in_flight(), 1);
    }

    #[test]
    fn default_link_used_when_unspecified() {
        let mut net: Network<u8> = Network::new(8);
        let a = net.add_node("a");
        let b = net.add_node("b");
        net.set_default_link(LinkSpec::instant());
        net.send(a, b, 1, 9);
        assert_eq!(net.next_event().unwrap().payload, 9);
    }

    #[test]
    fn node_names_retrievable() {
        let mut net: Network<u8> = Network::new(9);
        let a = net.add_node("pep.hospital-a");
        assert_eq!(net.node_name(a), "pep.hospital-a");
        assert_eq!(net.node_count(), 1);
    }

    #[test]
    fn tie_break_is_fifo_for_same_timestamp() {
        let (mut net, a, b) = two_nodes(10, LinkSpec::instant());
        for i in 0..10 {
            net.send(a, b, 0, i);
        }
        let mut seen = Vec::new();
        while let Some(d) = net.next_event() {
            seen.push(d.payload);
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}
