//! # dacs-telemetry — metric registry and decision-path tracing
//!
//! Observability primitives for the DACS decision path, split in two
//! halves that share nothing but a [`Telemetry`] handle:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s and log-bucketed
//!   [`Histogram`]s behind atomics. Recording a sample is a couple of
//!   relaxed atomic adds; no samples are stored, yet `p50/p95/p99/p999`
//!   come back within ~1.6% relative error (32 linear sub-buckets per
//!   power-of-two octave). [`Registry::render_text`] emits a
//!   Prometheus-style text exposition.
//! * [`Tracer`] — per-enforcement traces. A root [`Span`] stamps the
//!   enforcement with a trace id; timed child spans record every hop
//!   (PEP cache lookup, shard routing, quorum fan-out, per-replica
//!   `decide()` including hedges and cancellations, obligation
//!   evaluation). Spans propagate across call layers through a
//!   thread-local current-span context ([`Span::enter`] /
//!   [`current`]) so no trait signature changes, and across the
//!   fan-out thread pool by capturing a [`SpanCtx`] into the job
//!   closure. A dropped span is recorded, never leaked:
//!   [`Tracer::dump_json`] always shows closed spans.
//!
//! Every instrumented component takes an `Option<Arc<Telemetry>>`;
//! `None` keeps the hot path free of telemetry work entirely.
//!
//! The span hierarchy, metric names, and the exposition/trace-dump
//! formats are documented in the repository's `ARCHITECTURE.md`
//! ("Observability" section).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod registry;
mod trace;

pub use registry::{Counter, Gauge, Histogram, Registry};
pub use trace::{current, SpanRecord};
pub use trace::{Span, SpanCtx, SpanGuard, Tracer};

/// One handle bundling the metric [`Registry`] and the [`Tracer`].
///
/// Components that opt into observability store an
/// `Option<Arc<Telemetry>>` and thread it through their builders; a
/// single handle shared across PEP, cluster, pool and syndication tree
/// yields one coherent exposition and one trace stream per run.
#[derive(Debug, Default)]
pub struct Telemetry {
    registry: Registry,
    tracer: Tracer,
}

impl Telemetry {
    /// A fresh handle with an empty registry and trace sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of finished spans the tracer retains (older
    /// spans win; a `dropped_spans` counter in [`Tracer::dump_json`]
    /// reports the overflow). The default cap is 65 536 spans.
    pub fn with_span_capacity(mut self, cap: usize) -> Self {
        self.tracer = self.tracer.with_capacity(cap);
        self
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn one_handle_feeds_both_halves() {
        let t = Arc::new(Telemetry::new());
        t.registry().counter("dacs_demo_total").inc();
        let span = t.tracer().root("demo");
        span.finish();
        assert_eq!(t.registry().counter("dacs_demo_total").get(), 1);
        assert_eq!(t.tracer().snapshot().len(), 1);
    }
}
