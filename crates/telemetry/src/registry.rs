//! Named counters, gauges, and log-bucketed histograms.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of linear sub-buckets per power-of-two octave: 2^5.
const SUB_BITS: u32 = 5;
/// Sub-bucket count (32).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// A log-bucketed histogram: percentile estimates without stored
/// samples.
///
/// Values below 32 land in exact unit buckets; above that, each
/// power-of-two octave is split into 32 linear sub-buckets, so a
/// bucket's width is at most 1/32 of its lower bound and the reported
/// percentile (the bucket midpoint) is within ~1.6% of the true
/// sample. Recording is two relaxed atomic adds; reading walks ~2k
/// counters.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // 2^exp <= v
    let group = exp - SUB_BITS; // octaves past the exact range
    let sub = (v >> group) - SUB; // top SUB_BITS+1 bits minus the leading one
    (group as u64 * SUB + SUB + sub) as usize
}

/// Lower bound and width of one bucket.
fn bucket_bounds(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < SUB {
        return (index, 1);
    }
    let group = (index - SUB) / SUB;
    let sub = (index - SUB) % SUB;
    ((SUB + sub) << group, 1u64 << group)
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimated quantile `q` in `[0, 1]`, using the same nearest-rank
    /// convention as the experiment suite's `Summary` (`q = 0.99` of
    /// 100 samples is the 99th smallest) so the two agree to within a
    /// bucket width. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64 + 1;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let (lo, width) = bucket_bounds(i);
                return lo + width / 2;
            }
        }
        bucket_bounds(BUCKETS - 1).0
    }
}

/// A lock-cheap registry of named metrics.
///
/// Lookup takes a read lock on a name→`Arc` map; hot paths should
/// resolve their handles once and keep the `Arc`s. Names follow the
/// Prometheus convention (`dacs_cluster_decide_us`); registration is
/// implicit on first use and a name permanently denotes one metric
/// kind.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().get(name) {
        return v.clone();
    }
    map.write()
        .entry(name.to_string())
        .or_insert_with(|| Arc::new(T::default()))
        .clone()
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// The value of a counter if it has been touched.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.read().get(name).map(|c| c.get())
    }

    /// The value of a gauge if it has been touched.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.gauges.read().get(name).map(|g| g.get())
    }

    /// Prometheus-style text exposition of every registered metric.
    ///
    /// Counters and gauges render as single samples; histograms render
    /// as summaries with `quantile` labels for p50/p95/p99/p999 plus
    /// `_sum` and `_count`, in deterministic (sorted-name) order.
    pub fn render_text(&self) -> String {
        self.render_text_filtered("")
    }

    /// [`Registry::render_text`] restricted to metrics whose name
    /// starts with `prefix` (the empty prefix renders everything).
    /// Used to cut one subsystem's exposition out of a shared registry
    /// — e.g. the fan-out scheduler's per-lane queue-wait histograms
    /// (`dacs_sched_`) as a standalone bench artifact.
    pub fn render_text_filtered(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.read().iter() {
            if !name.starts_with(prefix) {
                continue;
            }
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
        }
        for (name, g) in self.gauges.read().iter() {
            if !name.starts_with(prefix) {
                continue;
            }
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
        }
        for (name, h) in self.histograms.read().iter() {
            if !name.starts_with(prefix) {
                continue;
            }
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (label, q) in [
                ("0.5", 0.50),
                ("0.95", 0.95),
                ("0.99", 0.99),
                ("0.999", 0.999),
            ] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    h.percentile(q)
                ));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum()));
            out.push_str(&format!("{name}_count {}\n", h.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        r.counter("dacs_x_total").inc();
        r.counter("dacs_x_total").add(4);
        r.gauge("dacs_lag").set(7);
        r.gauge("dacs_lag").set_max(3); // lower: no-op
        r.gauge("dacs_lag").set_max(9);
        assert_eq!(r.counter_value("dacs_x_total"), Some(5));
        assert_eq!(r.gauge_value("dacs_lag"), Some(9));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn bucket_index_and_bounds_are_inverse() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1000, 65_535, 1 << 40] {
            let i = bucket_index(v);
            let (lo, width) = bucket_bounds(i);
            assert!(lo <= v && v < lo + width, "v={v} i={i} lo={lo} w={width}");
        }
        // Small values are exact.
        for v in 0..32u64 {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, 1));
        }
    }

    #[test]
    fn percentiles_track_exact_ranks_within_bucket_error() {
        let h = Histogram::default();
        let mut samples: Vec<u64> = (0..5000u64).map(|i| (i * i) % 90_000 + 10).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.95, 0.99, 0.999] {
            let exact = samples[((samples.len() - 1) as f64 * q).round() as usize];
            let est = h.percentile(q);
            let err = (est as f64 - exact as f64).abs();
            assert!(
                err <= (exact as f64) * 0.02 + 1.0,
                "q={q} exact={exact} est={est}"
            );
        }
        assert_eq!(h.count(), 5000);
        assert_eq!(h.sum(), samples.iter().sum::<u64>());
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn render_text_is_prometheus_shaped_and_sorted() {
        let r = Registry::new();
        r.counter("dacs_b_total").add(2);
        r.counter("dacs_a_total").inc();
        r.gauge("dacs_epoch").set(3);
        let h = r.histogram("dacs_lat_us");
        for v in 1..=100u64 {
            h.record(v);
        }
        let text = r.render_text();
        let a = text.find("dacs_a_total 1").expect("counter a");
        let b = text.find("dacs_b_total 2").expect("counter b");
        assert!(a < b, "sorted order");
        assert!(text.contains("# TYPE dacs_lat_us summary"));
        // Nearest-rank p99 of 1..=100 is the 99th smallest sample; it
        // lands in a width-2 bucket whose midpoint is exactly 99.
        assert!(text.contains("dacs_lat_us{quantile=\"0.99\"} 99"));
        assert!(text.contains("dacs_lat_us_count 100"));
        assert!(text.contains("dacs_lat_us_sum 5050"));
        assert!(text.contains("# TYPE dacs_epoch gauge\ndacs_epoch 3"));
    }

    #[test]
    fn filtered_exposition_cuts_one_subsystem() {
        let r = Registry::new();
        r.counter("dacs_sched_jobs_total_bulk").add(3);
        r.histogram("dacs_sched_queue_wait_us_interactive")
            .record(7);
        r.counter("dacs_other_total").inc();
        r.gauge("dacs_sched_depth").set(2);
        let text = r.render_text_filtered("dacs_sched_");
        assert!(text.contains("dacs_sched_jobs_total_bulk 3"));
        assert!(text.contains("dacs_sched_queue_wait_us_interactive_count 1"));
        assert!(text.contains("dacs_sched_depth 2"));
        assert!(!text.contains("dacs_other_total"));
        // The unfiltered render still carries everything.
        assert!(r.render_text().contains("dacs_other_total 1"));
    }
}
