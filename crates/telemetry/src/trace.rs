//! Trace-id stamping and timed spans for the decision path.

use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The coordinates of a live span: enough to parent a child to it,
/// even from another thread.
///
/// Fan-out code captures the current `SpanCtx` into job closures so
/// the per-replica spans recorded on pool workers attach to the
/// enforcement that dispatched them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanCtx {
    /// The trace this span belongs to.
    pub trace: u64,
    /// The span's own id (a child uses it as `parent`).
    pub span: u64,
}

/// One finished span, as retained by the tracer and emitted in the
/// JSON trace dump.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// Trace id shared by every span of one enforcement.
    pub trace: u64,
    /// This span's id (unique per tracer).
    pub id: u64,
    /// Parent span id; `0` marks a root span.
    pub parent: u64,
    /// Stage name, e.g. `"pep_enforce"` or `"replica_decide"`.
    pub stage: &'static str,
    /// Free-form annotation (replica name, `"hit"`, `"cancelled:…"`).
    pub note: Option<String>,
    /// Start time in nanoseconds since the tracer was created.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

thread_local! {
    static CURRENT: Cell<Option<SpanCtx>> = const { Cell::new(None) };
}

/// The span context most recently entered on this thread, if any.
///
/// Layers that cannot thread a parent span through their signature
/// (e.g. `DecisionSource::decide`) use this to attach their spans to
/// the enclosing enforcement.
pub fn current() -> Option<SpanCtx> {
    CURRENT.with(|c| c.get())
}

/// Restores the previous thread-local span context on drop.
#[must_use = "dropping the guard immediately exits the span context"]
#[derive(Debug)]
pub struct SpanGuard {
    prev: Option<SpanCtx>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[derive(Debug)]
struct TracerInner {
    epoch: Instant,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl TracerInner {
    fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }
}

/// Allocates trace ids and collects finished spans.
///
/// Cloning is cheap (an `Arc` bump) and every clone feeds the same
/// sink. The sink is capped (default 65 536 spans); overflow is
/// counted, not silently discarded.
#[derive(Clone, Debug)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self {
            inner: Arc::new(TracerInner::new(65_536)),
        }
    }
}

impl Tracer {
    /// A fresh tracer with an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the tracer with a different span-retention cap.
    pub(crate) fn with_capacity(self, cap: usize) -> Self {
        Self {
            inner: Arc::new(TracerInner::new(cap)),
        }
    }

    fn start_span(&self, trace: u64, parent: u64, stage: &'static str) -> Span {
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        Span {
            tracer: self.clone(),
            ctx: SpanCtx { trace, span: id },
            parent,
            stage,
            note: None,
            start,
            start_ns: start.duration_since(self.inner.epoch).as_nanos() as u64,
            finished: false,
        }
    }

    /// Starts a new trace and returns its root span.
    pub fn root(&self, stage: &'static str) -> Span {
        let trace = self.inner.next_trace.fetch_add(1, Ordering::Relaxed);
        self.start_span(trace, 0, stage)
    }

    /// Starts a span parented to `ctx` (same trace).
    pub fn child_of(&self, ctx: SpanCtx, stage: &'static str) -> Span {
        self.start_span(ctx.trace, ctx.span, stage)
    }

    /// Starts a span under `parent` when given, else a new root trace.
    ///
    /// This is the cross-thread entry: capture [`current`] (or a
    /// span's [`Span::ctx`]) before handing work to another thread and
    /// pass it here inside the job.
    pub fn span_under(&self, parent: Option<SpanCtx>, stage: &'static str) -> Span {
        match parent {
            Some(ctx) => self.child_of(ctx, stage),
            None => self.root(stage),
        }
    }

    /// Starts a span under the thread-current context ([`current`]),
    /// or a new root trace when none is entered.
    pub fn span(&self, stage: &'static str) -> Span {
        self.span_under(current(), stage)
    }

    fn record(&self, rec: SpanRecord) {
        let mut spans = self.inner.spans.lock();
        if spans.len() >= self.inner.capacity {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            spans.push(rec);
        }
    }

    /// A copy of every finished span recorded so far.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().clone()
    }

    /// Number of spans discarded because the sink was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Discards every recorded span (the id counters keep running).
    pub fn clear(&self) {
        self.inner.spans.lock().clear();
    }

    /// The trace dump: one JSON object with a `spans` array (each span
    /// carrying `trace`, `id`, `parent`, `stage`, optional `note`,
    /// `start_ns`, `dur_ns`) plus the overflow counter.
    pub fn dump_json(&self) -> String {
        let spans = self.snapshot();
        let mut out = String::with_capacity(spans.len() * 96 + 64);
        out.push_str(&format!(
            "{{\"dropped_spans\":{},\"spans\":[",
            self.dropped()
        ));
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"trace\":{},\"id\":{},\"parent\":{},\"stage\":\"{}\"",
                s.trace,
                s.id,
                s.parent,
                json_escape(s.stage)
            ));
            if let Some(note) = &s.note {
                out.push_str(&format!(",\"note\":\"{}\"", json_escape(note)));
            }
            out.push_str(&format!(
                ",\"start_ns\":{},\"dur_ns\":{}}}",
                s.start_ns, s.dur_ns
            ));
        }
        out.push_str("]}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A live, timed span. Closing is infallible: [`Span::finish`] records
/// it, and dropping an unfinished span records it too, so cancelled or
/// panicking paths never leak an open span from the trace dump.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    ctx: SpanCtx,
    parent: u64,
    stage: &'static str,
    note: Option<String>,
    start: Instant,
    start_ns: u64,
    finished: bool,
}

impl Span {
    /// This span's coordinates, for parenting children (possibly on
    /// other threads).
    pub fn ctx(&self) -> SpanCtx {
        self.ctx
    }

    /// Starts a child span.
    pub fn child(&self, stage: &'static str) -> Span {
        self.tracer.child_of(self.ctx, stage)
    }

    /// Makes this span the thread-current context until the guard
    /// drops.
    pub fn enter(&self) -> SpanGuard {
        let prev = current();
        CURRENT.with(|c| c.set(Some(self.ctx)));
        SpanGuard { prev }
    }

    /// Annotates the span (replica name, cache-hit marker, …).
    pub fn set_note(&mut self, note: impl Into<String>) {
        self.note = Some(note.into());
    }

    /// Microseconds elapsed since the span started.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn close(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.tracer.record(SpanRecord {
            trace: self.ctx.trace,
            id: self.ctx.span,
            parent: self.parent,
            stage: self.stage,
            note: self.note.take(),
            start_ns: self.start_ns,
            dur_ns: self.start.elapsed().as_nanos() as u64,
        });
    }

    /// Ends the span and records it.
    pub fn finish(mut self) {
        self.close();
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn roots_get_distinct_traces_and_children_inherit() {
        let t = Tracer::new();
        let a = t.root("a");
        let b = t.root("b");
        assert_ne!(a.ctx().trace, b.ctx().trace);
        let child = a.child("c");
        assert_eq!(child.ctx().trace, a.ctx().trace);
        child.finish();
        let recs = t.snapshot();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].parent, a.ctx().span);
    }

    #[test]
    fn enter_guard_scopes_the_current_context() {
        let t = Tracer::new();
        assert_eq!(current(), None);
        let root = t.root("root");
        {
            let _g = root.enter();
            assert_eq!(current(), Some(root.ctx()));
            let inner = t.span("inner");
            assert_eq!(inner.ctx().trace, root.ctx().trace);
            {
                let _g2 = inner.enter();
                assert_eq!(current(), Some(inner.ctx()));
            }
            assert_eq!(current(), Some(root.ctx()));
        }
        assert_eq!(current(), None);
        // With no context entered, span() opens a fresh root trace.
        let solo = t.span("solo");
        assert_eq!(solo.parent, 0);
    }

    #[test]
    fn spans_cross_threads_via_captured_ctx() {
        let t = Tracer::new();
        let root = t.root("root");
        let ctx = root.ctx();
        let t2 = t.clone();
        std::thread::spawn(move || {
            let mut s = t2.span_under(Some(ctx), "worker");
            s.set_note("replica-1");
            s.finish();
        })
        .join()
        .unwrap();
        root.finish();
        let recs = t.snapshot();
        assert_eq!(recs.len(), 2);
        let worker = recs.iter().find(|r| r.stage == "worker").unwrap();
        assert_eq!(worker.parent, ctx.span);
        assert_eq!(worker.note.as_deref(), Some("replica-1"));
    }

    #[test]
    fn dropped_spans_are_recorded_not_leaked() {
        let t = Tracer::new();
        {
            let _span = t.root("abandoned");
            // No finish(): the drop must still record it.
        }
        let recs = t.snapshot();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].stage, "abandoned");
    }

    #[test]
    fn sink_cap_counts_overflow() {
        let t = Tracer::new().with_capacity(2);
        for _ in 0..5 {
            t.root("s").finish();
        }
        assert_eq!(t.snapshot().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn durations_are_monotone_and_nested() {
        let t = Tracer::new();
        let root = t.root("root");
        let child = root.child("child");
        std::thread::sleep(Duration::from_millis(2));
        child.finish();
        root.finish();
        let recs = t.snapshot();
        let root_rec = recs.iter().find(|r| r.stage == "root").unwrap();
        let child_rec = recs.iter().find(|r| r.stage == "child").unwrap();
        assert!(child_rec.dur_ns >= 2_000_000);
        assert!(root_rec.dur_ns >= child_rec.dur_ns);
        assert!(child_rec.start_ns >= root_rec.start_ns);
    }

    #[test]
    fn dump_json_carries_every_field() {
        let t = Tracer::new();
        let mut s = t.root("pep_enforce");
        s.set_note("cache \"hit\"");
        s.finish();
        let json = t.dump_json();
        assert!(json.starts_with("{\"dropped_spans\":0,\"spans\":["));
        assert!(json.contains("\"stage\":\"pep_enforce\""));
        assert!(json.contains("\"note\":\"cache \\\"hit\\\"\""));
        assert!(json.contains("\"parent\":0"));
        assert!(json.contains("\"dur_ns\":"));
    }
}
