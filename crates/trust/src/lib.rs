//! # dacs-trust
//!
//! Automated trust negotiation (§3.1 of the DSN 2008 paper): when
//! neither identity- nor capability-based approaches work because the
//! parties share no prior relationship, "the client and the resource
//! provider conduct a bilateral and iterative exchange of policies and
//! credentials to incrementally establish trust" (Winsborough et al.;
//! Traust).
//!
//! Model: each party holds [`Credential`]s guarded by release policies
//! over the *peer's* disclosed credentials. The resource is guarded by a
//! release policy over the client's credentials. Negotiation proceeds in
//! rounds; strategies:
//!
//! * [`Strategy::Eager`] — disclose every unlocked credential each
//!   round (fast convergence, maximal disclosure).
//! * [`Strategy::Parsimonious`] — disclose only credentials on the
//!   dependency path to the goal (minimal disclosure, same success).
//!
//! Experiment E10 sweeps dependency-chain depth and compares rounds and
//! credentials disclosed per strategy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// A condition over the peer's disclosed credential ids.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ReleasePolicy {
    /// Freely disclosable.
    Unprotected,
    /// All listed peer credentials must have been disclosed.
    RequiresAll(Vec<String>),
    /// At least one listed peer credential must have been disclosed.
    RequiresAny(Vec<String>),
}

impl ReleasePolicy {
    /// Whether the condition holds against a set of disclosed ids.
    pub fn satisfied(&self, disclosed: &BTreeSet<String>) -> bool {
        match self {
            ReleasePolicy::Unprotected => true,
            ReleasePolicy::RequiresAll(ids) => ids.iter().all(|i| disclosed.contains(i)),
            ReleasePolicy::RequiresAny(ids) => ids.iter().any(|i| disclosed.contains(i)),
        }
    }

    /// Credential ids referenced by the policy.
    pub fn referenced(&self) -> &[String] {
        match self {
            ReleasePolicy::Unprotected => &[],
            ReleasePolicy::RequiresAll(ids) | ReleasePolicy::RequiresAny(ids) => ids,
        }
    }
}

/// A credential with a release policy guarding its disclosure.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Credential {
    /// Credential id, e.g. `"employee-badge"`.
    pub id: String,
    /// Sensitivity class (0 = public), used for reporting.
    pub sensitivity: u8,
    /// Condition the *peer* must meet before this is disclosed.
    pub release: ReleasePolicy,
}

impl Credential {
    /// Creates an unprotected credential.
    pub fn public(id: impl Into<String>) -> Self {
        Credential {
            id: id.into(),
            sensitivity: 0,
            release: ReleasePolicy::Unprotected,
        }
    }

    /// Creates a credential guarded by a release policy.
    pub fn guarded(id: impl Into<String>, sensitivity: u8, release: ReleasePolicy) -> Self {
        Credential {
            id: id.into(),
            sensitivity,
            release,
        }
    }
}

/// Disclosure strategies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Disclose everything currently unlocked.
    Eager,
    /// Disclose only credentials relevant to the goal.
    Parsimonious,
}

/// One negotiating party.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Party {
    /// Party name (diagnostics).
    pub name: String,
    /// Credentials held, by id.
    pub credentials: HashMap<String, Credential>,
}

impl Party {
    /// Creates a party from credentials.
    pub fn new(name: impl Into<String>, credentials: Vec<Credential>) -> Self {
        Party {
            name: name.into(),
            credentials: credentials.into_iter().map(|c| (c.id.clone(), c)).collect(),
        }
    }
}

/// One disclosure event in the transcript.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Disclosure {
    /// Round number (1-based).
    pub round: u32,
    /// `true` when disclosed by the client, `false` by the server.
    pub by_client: bool,
    /// The credential disclosed.
    pub credential: String,
}

/// Result of a negotiation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Outcome {
    /// Whether the resource policy was eventually satisfied.
    pub success: bool,
    /// Rounds executed (a round = one client phase + one server phase).
    pub rounds: u32,
    /// Credentials the client ended up disclosing.
    pub disclosed_by_client: BTreeSet<String>,
    /// Credentials the server ended up disclosing.
    pub disclosed_by_server: BTreeSet<String>,
    /// Full ordered transcript.
    pub transcript: Vec<Disclosure>,
    /// Messages exchanged (2 per round plus the final grant/refuse).
    pub messages: u32,
}

/// Computes the relevance set for parsimonious disclosure: credentials
/// reachable by backward chaining from the goal through release
/// policies.
fn relevance(
    goal: &ReleasePolicy,
    client: &Party,
    server: &Party,
) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut relevant_client: BTreeSet<String> = goal.referenced().iter().cloned().collect();
    let mut relevant_server: BTreeSet<String> = BTreeSet::new();
    loop {
        let before = (relevant_client.len(), relevant_server.len());
        // A relevant client credential's release policy references server
        // credentials, which become relevant, and vice versa.
        for id in relevant_client.clone() {
            if let Some(c) = client.credentials.get(&id) {
                relevant_server.extend(c.release.referenced().iter().cloned());
            }
        }
        for id in relevant_server.clone() {
            if let Some(c) = server.credentials.get(&id) {
                relevant_client.extend(c.release.referenced().iter().cloned());
            }
        }
        if (relevant_client.len(), relevant_server.len()) == before {
            break;
        }
    }
    (relevant_client, relevant_server)
}

/// Runs a negotiation: the client wants a resource guarded by
/// `resource_policy` (a condition over *client* credentials).
///
/// Each round the client discloses what it can, then the server. The
/// negotiation succeeds as soon as the resource policy is satisfied,
/// and fails when a full round makes no progress or `max_rounds` is
/// reached.
pub fn negotiate(
    client: &Party,
    server: &Party,
    resource_policy: &ReleasePolicy,
    strategy: Strategy,
    max_rounds: u32,
) -> Outcome {
    let (relevant_client, relevant_server) = match strategy {
        Strategy::Eager => (BTreeSet::new(), BTreeSet::new()),
        Strategy::Parsimonious => relevance(resource_policy, client, server),
    };
    let relevant = |by_client: bool, id: &str| -> bool {
        match strategy {
            Strategy::Eager => true,
            Strategy::Parsimonious => {
                if by_client {
                    relevant_client.contains(id)
                } else {
                    relevant_server.contains(id)
                }
            }
        }
    };

    let mut disclosed_client: BTreeSet<String> = BTreeSet::new();
    let mut disclosed_server: BTreeSet<String> = BTreeSet::new();
    let mut transcript = Vec::new();
    let mut rounds = 0;
    let mut success = resource_policy.satisfied(&disclosed_client);

    while !success && rounds < max_rounds {
        rounds += 1;
        let mut progressed = false;

        // Client phase: disclose unlocked, relevant, undisclosed creds.
        for (id, cred) in &client.credentials {
            if !disclosed_client.contains(id)
                && relevant(true, id)
                && cred.release.satisfied(&disclosed_server)
            {
                disclosed_client.insert(id.clone());
                transcript.push(Disclosure {
                    round: rounds,
                    by_client: true,
                    credential: id.clone(),
                });
                progressed = true;
            }
        }
        if resource_policy.satisfied(&disclosed_client) {
            success = true;
            break;
        }
        // Server phase.
        for (id, cred) in &server.credentials {
            if !disclosed_server.contains(id)
                && relevant(false, id)
                && cred.release.satisfied(&disclosed_client)
            {
                disclosed_server.insert(id.clone());
                transcript.push(Disclosure {
                    round: rounds,
                    by_client: false,
                    credential: id.clone(),
                });
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    // Sort transcript within rounds deterministically (HashMap order).
    transcript.sort_by(|a, b| {
        (a.round, !a.by_client, a.credential.clone()).cmp(&(
            b.round,
            !b.by_client,
            b.credential.clone(),
        ))
    });

    Outcome {
        success,
        rounds,
        messages: rounds * 2 + 1,
        disclosed_by_client: disclosed_client,
        disclosed_by_server: disclosed_server,
        transcript,
    }
}

/// Builds the standard chain scenario of depth `n` used by experiment
/// E10: the resource requires client credential `c0`; `c0` requires
/// server credential `s0`; `s0` requires `c1`; ... The chain bottoms
/// out in an unprotected client credential `c{n}`.
///
/// Both parties also carry `extra` irrelevant public credentials, which
/// eager strategies will disclose and parsimonious ones will not.
pub fn chain_scenario(depth: u32, extra: u32) -> (Party, Party, ReleasePolicy) {
    let mut client_creds = Vec::new();
    let mut server_creds = Vec::new();
    for k in 0..=depth {
        let release = if k == depth {
            ReleasePolicy::Unprotected
        } else {
            ReleasePolicy::RequiresAll(vec![format!("s{k}")])
        };
        client_creds.push(Credential::guarded(format!("c{k}"), k as u8, release));
        if k < depth {
            server_creds.push(Credential::guarded(
                format!("s{k}"),
                k as u8,
                ReleasePolicy::RequiresAll(vec![format!("c{}", k + 1)]),
            ));
        }
    }
    for e in 0..extra {
        client_creds.push(Credential::public(format!("client-extra-{e}")));
        server_creds.push(Credential::public(format!("server-extra-{e}")));
    }
    (
        Party::new("client", client_creds),
        Party::new("server", server_creds),
        ReleasePolicy::RequiresAll(vec!["c0".into()]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_unprotected_succeeds_in_one_round() {
        let client = Party::new("c", vec![Credential::public("student-id")]);
        let server = Party::new("s", vec![]);
        let goal = ReleasePolicy::RequiresAll(vec!["student-id".into()]);
        let out = negotiate(&client, &server, &goal, Strategy::Eager, 10);
        assert!(out.success);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.disclosed_by_client.len(), 1);
    }

    #[test]
    fn chain_depth_drives_round_count() {
        for depth in 0..6u32 {
            let (client, server, goal) = chain_scenario(depth, 0);
            let out = negotiate(&client, &server, &goal, Strategy::Eager, 50);
            assert!(out.success, "depth {depth} should succeed");
            // Eager unlocks one chain link per phase-pair; rounds grow
            // with depth.
            assert!(
                out.rounds >= depth.max(1) / 2,
                "depth {depth}: rounds {}",
                out.rounds
            );
        }
        let shallow = {
            let (c, s, g) = chain_scenario(1, 0);
            negotiate(&c, &s, &g, Strategy::Eager, 50).rounds
        };
        let deep = {
            let (c, s, g) = chain_scenario(5, 0);
            negotiate(&c, &s, &g, Strategy::Eager, 50).rounds
        };
        assert!(deep > shallow);
    }

    #[test]
    fn parsimonious_discloses_less_than_eager() {
        let (client, server, goal) = chain_scenario(3, 5);
        let eager = negotiate(&client, &server, &goal, Strategy::Eager, 50);
        let pars = negotiate(&client, &server, &goal, Strategy::Parsimonious, 50);
        assert!(eager.success && pars.success);
        assert!(
            pars.disclosed_by_client.len() < eager.disclosed_by_client.len(),
            "parsimonious {:?} vs eager {:?}",
            pars.disclosed_by_client,
            eager.disclosed_by_client
        );
        assert!(pars.disclosed_by_server.len() < eager.disclosed_by_server.len());
        // Neither discloses the irrelevant extras under parsimonious.
        assert!(pars
            .disclosed_by_client
            .iter()
            .all(|c| !c.starts_with("client-extra")));
    }

    #[test]
    fn deadlock_detected_as_failure() {
        // c0 requires s0; s0 requires c0 — circular, no progress.
        let client = Party::new(
            "c",
            vec![Credential::guarded(
                "c0",
                1,
                ReleasePolicy::RequiresAll(vec!["s0".into()]),
            )],
        );
        let server = Party::new(
            "s",
            vec![Credential::guarded(
                "s0",
                1,
                ReleasePolicy::RequiresAll(vec!["c0".into()]),
            )],
        );
        let goal = ReleasePolicy::RequiresAll(vec!["c0".into()]);
        let out = negotiate(&client, &server, &goal, Strategy::Eager, 50);
        assert!(!out.success);
        assert!(out.rounds < 50, "must terminate early on no progress");
    }

    #[test]
    fn missing_credential_fails() {
        let client = Party::new("c", vec![Credential::public("x")]);
        let server = Party::new("s", vec![]);
        let goal = ReleasePolicy::RequiresAll(vec!["y".into()]);
        let out = negotiate(&client, &server, &goal, Strategy::Parsimonious, 10);
        assert!(!out.success);
    }

    #[test]
    fn requires_any_semantics() {
        let mut d = BTreeSet::new();
        let p = ReleasePolicy::RequiresAny(vec!["a".into(), "b".into()]);
        assert!(!p.satisfied(&d));
        d.insert("b".into());
        assert!(p.satisfied(&d));
        assert!(ReleasePolicy::Unprotected.satisfied(&BTreeSet::new()));
    }

    #[test]
    fn transcript_is_ordered_and_complete() {
        let (client, server, goal) = chain_scenario(2, 0);
        let out = negotiate(&client, &server, &goal, Strategy::Eager, 50);
        assert!(out.success);
        let total = out.disclosed_by_client.len() + out.disclosed_by_server.len();
        assert_eq!(out.transcript.len(), total);
        assert!(out.transcript.windows(2).all(|w| w[0].round <= w[1].round));
    }

    #[test]
    fn message_count_reported() {
        let (client, server, goal) = chain_scenario(1, 0);
        let out = negotiate(&client, &server, &goal, Strategy::Eager, 50);
        assert_eq!(out.messages, out.rounds * 2 + 1);
    }

    #[test]
    fn zero_depth_chain() {
        let (client, server, goal) = chain_scenario(0, 0);
        let out = negotiate(&client, &server, &goal, Strategy::Parsimonious, 10);
        assert!(out.success);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.disclosed_by_server.len(), 0);
    }
}
