//! Standard base64 (RFC 4648) encoding, used by the XML-ish codec to
//! model how binary content (signatures, digests) expands inside
//! text-based envelopes — the 4/3 growth the paper's message-size
//! discussion implies.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes to base64 with padding.
///
/// # Examples
///
/// ```
/// assert_eq!(dacs_wire::base64::encode(b"Man"), "TWFu");
/// assert_eq!(dacs_wire::base64::encode(b"Ma"), "TWE=");
/// ```
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

fn value_of(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a') as u32 + 26),
        b'0'..=b'9' => Some((c - b'0') as u32 + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes padded base64. Returns `None` on malformed input.
///
/// # Examples
///
/// ```
/// assert_eq!(dacs_wire::base64::decode("TWFu"), Some(b"Man".to_vec()));
/// assert_eq!(dacs_wire::base64::decode("bad!"), None);
/// ```
pub fn decode(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = i == bytes.len() / 4 - 1;
        let pad = if last {
            chunk.iter().rev().take_while(|&&c| c == b'=').count()
        } else {
            0
        };
        if pad > 2 {
            return None;
        }
        let mut n: u32 = 0;
        for (j, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' {
                if j < 4 - pad {
                    return None; // '=' only allowed at the end
                }
                0
            } else {
                value_of(c)?
            };
            n = (n << 6) | v;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)), Some(data));
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(decode("abc"), None); // not multiple of 4
        assert_eq!(decode("a=bc"), None); // pad in the middle
        assert_eq!(decode("????"), None); // bad alphabet
        assert_eq!(decode("===="), None); // too much padding
    }

    #[test]
    fn growth_factor_is_four_thirds() {
        let data = vec![0u8; 300];
        assert_eq!(encode(&data).len(), 400);
    }
}
