//! A compact, non-self-describing binary codec (bincode-like), written
//! from scratch on top of serde.
//!
//! This is the functional wire format of the system: every protocol
//! message round-trips through it, and message-level security (signing,
//! encryption) operates on its output. The XML-style expansion the paper
//! worries about (§3.2 Communication Performance) is modelled by
//! [`crate::xmlish`].
//!
//! Format:
//! * integers: fixed-width little-endian
//! * `bool`: one byte (0/1)
//! * `f32`/`f64`: IEEE bits, little-endian
//! * strings/bytes: `u32` length prefix + raw bytes
//! * `Option`: one-byte tag + value
//! * sequences/maps: `u32` length prefix + elements
//! * structs/tuples: fields in order, no tags
//! * enums: `u32` variant index + payload

use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};
use serde::{ser, Deserialize, Serialize};
use std::fmt;

/// Errors raised by encoding or decoding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// A serde error message.
    Message(String),
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// Trailing bytes remained after deserialization.
    TrailingBytes(usize),
    /// The format cannot represent this (e.g. unsized sequences).
    Unsupported(&'static str),
    /// A length prefix or variant index was out of range.
    InvalidData(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Message(m) => write!(f, "{m}"),
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::Unsupported(what) => write!(f, "unsupported: {what}"),
            CodecError::InvalidData(what) => write!(f, "invalid data: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

/// Encodes a value to compact bytes.
///
/// # Errors
///
/// Returns [`CodecError`] if the value contains an unsized sequence or a
/// type the format cannot represent.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut ser = CompactSerializer { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Decodes a value from compact bytes, requiring full consumption.
///
/// # Errors
///
/// Returns [`CodecError`] on malformed or truncated input or trailing
/// bytes.
pub fn from_bytes<'de, T: Deserialize<'de>>(bytes: &'de [u8]) -> Result<T, CodecError> {
    let mut de = CompactDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if de.input.is_empty() {
        Ok(value)
    } else {
        Err(CodecError::TrailingBytes(de.input.len()))
    }
}

// ----------------------------------------------------------- serializer --

struct CompactSerializer {
    out: Vec<u8>,
}

impl CompactSerializer {
    fn write_len(&mut self, len: usize) -> Result<(), CodecError> {
        let len32 = u32::try_from(len).map_err(|_| CodecError::InvalidData("length > u32"))?;
        self.out.extend_from_slice(&len32.to_le_bytes());
        Ok(())
    }
}

impl ser::Serializer for &mut CompactSerializer {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.write_len(v.len())?;
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.write_len(v.len())?;
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::Unsupported("unsized sequences"))?;
        self.write_len(len)?;
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::Unsupported("unsized maps"))?;
        self.write_len(len)?;
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

macro_rules! forward_compound {
    ($trait:ident, $method:ident $(, $key:ident)?) => {
        impl<'a> ser::$trait for &'a mut CompactSerializer {
            type Ok = ();
            type Error = CodecError;
            $(
                fn $key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
                    key.serialize(&mut **self)
                }
            )?
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

forward_compound!(SerializeSeq, serialize_element);
forward_compound!(SerializeTuple, serialize_element);
forward_compound!(SerializeTupleStruct, serialize_field);
forward_compound!(SerializeTupleVariant, serialize_field);
forward_compound!(SerializeMap, serialize_value, serialize_key);

impl ser::SerializeStruct for &mut CompactSerializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut CompactSerializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

// --------------------------------------------------------- deserializer --

struct CompactDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> CompactDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, rest) = self.input.split_at(n);
        self.input = rest;
        Ok(head)
    }

    fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn read_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn read_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn read_len(&mut self) -> Result<usize, CodecError> {
        // Element counts are validated lazily: a lying length prefix hits
        // UnexpectedEof while reading elements.
        Ok(self.read_u32()? as usize)
    }

    fn read_str(&mut self) -> Result<&'de str, CodecError> {
        let len = self.read_u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::InvalidData("invalid utf-8"))
    }
}

impl<'de> de::Deserializer<'de> for &mut CompactDeserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported(
            "deserialize_any (format is not self-describing)",
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_bool(self.read_u8()? != 0)
    }
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_i8(self.read_u8()? as i8)
    }
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(2)?;
        visitor.visit_i16(i16::from_le_bytes([b[0], b[1]]))
    }
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(4)?;
        visitor.visit_i32(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_i64(self.read_u64()? as i64)
    }
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_u8(self.read_u8()?)
    }
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(2)?;
        visitor.visit_u16(u16::from_le_bytes([b[0], b[1]]))
    }
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_u32(self.read_u32()?)
    }
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_u64(self.read_u64()?)
    }
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_f32(f32::from_bits(self.read_u32()?))
    }
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_f64(f64::from_bits(self.read_u64()?))
    }
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let c = char::from_u32(self.read_u32()?).ok_or(CodecError::InvalidData("invalid char"))?;
        visitor.visit_char(c)
    }
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_borrowed_str(self.read_str()?)
    }
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_u32()? as usize;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.read_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            _ => Err(CodecError::InvalidData("invalid option tag")),
        }
    }
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted {
            de: self,
            remaining: len,
        })
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        visitor.visit_map(Counted {
            de: self,
            remaining: len,
        })
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumReader { de: self })
    }
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_u32(self.read_u32()?)
    }
    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported("ignored_any"))
    }
}

struct Counted<'de, 'a> {
    de: &'a mut CompactDeserializer<'de>,
    remaining: usize,
}

impl<'de, 'a> de::SeqAccess<'de> for Counted<'de, 'a> {
    type Error = CodecError;
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de, 'a> de::MapAccess<'de> for Counted<'de, 'a> {
    type Error = CodecError;
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumReader<'de, 'a> {
    de: &'a mut CompactDeserializer<'de>,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumReader<'de, 'a> {
    type Error = CodecError;
    type Variant = VariantReader<'de, 'a>;
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), CodecError> {
        let idx = self.de.read_u32()?;
        let val = seed.deserialize(idx.into_deserializer())?;
        Ok((val, VariantReader { de: self.de }))
    }
}

struct VariantReader<'de, 'a> {
    de: &'a mut CompactDeserializer<'de>,
}

impl<'de, 'a> de::VariantAccess<'de> for VariantReader<'de, 'a> {
    type Error = CodecError;
    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Sample {
        Unit,
        Newtype(u64),
        Tuple(i32, String),
        Struct { name: String, flags: Vec<bool> },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        id: u64,
        label: String,
        maybe: Option<f64>,
        children: Vec<Sample>,
        map: BTreeMap<String, i64>,
        pair: (u8, char),
    }

    fn roundtrip<T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = to_bytes(v).expect("encodes");
        let back: T = from_bytes(&bytes).expect("decodes");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&42u8);
        roundtrip(&-7i64);
        roundtrip(&3.25f64);
        roundtrip(&'é');
        roundtrip(&"hello world".to_string());
        roundtrip(&Option::<u32>::None);
        roundtrip(&Some(99u32));
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(&Sample::Unit);
        roundtrip(&Sample::Newtype(12345));
        roundtrip(&Sample::Tuple(-1, "x".into()));
        roundtrip(&Sample::Struct {
            name: "pep".into(),
            flags: vec![true, false, true],
        });
    }

    #[test]
    fn nested_struct_roundtrip() {
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1i64);
        map.insert("b".to_string(), -2i64);
        roundtrip(&Nested {
            id: 7,
            label: "envelope".into(),
            maybe: Some(2.5),
            children: vec![Sample::Unit, Sample::Newtype(1)],
            map,
            pair: (255, 'z'),
        });
    }

    #[test]
    fn policy_types_roundtrip() {
        // Integration with the policy crate's serde derives happens in
        // the workspace integration tests; here we check representative
        // shapes (nested enums with struct variants).
        roundtrip(&vec![Sample::Struct {
            name: String::new(),
            flags: vec![],
        }]);
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&Sample::Newtype(1)).unwrap();
        for cut in 0..bytes.len() {
            let r: Result<Sample, _> = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32).unwrap();
        bytes.push(0);
        let r: Result<u32, _> = from_bytes(&bytes);
        assert_eq!(r, Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn invalid_option_tag_rejected() {
        let r: Result<Option<u8>, _> = from_bytes(&[2u8, 0]);
        assert!(matches!(r, Err(CodecError::InvalidData(_))));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // String of length 2 with invalid UTF-8.
        let bytes = vec![2, 0, 0, 0, 0xff, 0xfe];
        let r: Result<String, _> = from_bytes(&bytes);
        assert!(matches!(r, Err(CodecError::InvalidData(_))));
    }

    #[test]
    fn compactness() {
        // A u64 is exactly 8 bytes; a short string is 4 + len.
        assert_eq!(to_bytes(&0u64).unwrap().len(), 8);
        assert_eq!(to_bytes(&"abc".to_string()).unwrap().len(), 7);
    }
}
