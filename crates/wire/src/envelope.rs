//! Message envelopes: the SOAP-style wrapper every protocol message
//! travels in, with routing headers and correlation ids.

use serde::{Deserialize, Serialize};

/// A routed protocol message wrapping a body of type `B`.
///
/// `B` is the protocol payload enum defined by higher layers
/// (`dacs-federation::proto`). Envelopes are encoded with
/// [`crate::codec`] for transport and can be wrapped by
/// [`crate::security`] for integrity/confidentiality.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Envelope<B> {
    /// Sender component address, e.g. `"pep.hospital-a"`.
    pub from: String,
    /// Recipient component address, e.g. `"pdp.hospital-a"`.
    pub to: String,
    /// Sender-unique message id.
    pub msg_id: u64,
    /// For responses: the `msg_id` of the request being answered.
    pub correlation: Option<u64>,
    /// The protocol payload.
    pub body: B,
}

impl<B> Envelope<B> {
    /// Creates a request envelope.
    pub fn request(from: impl Into<String>, to: impl Into<String>, msg_id: u64, body: B) -> Self {
        Envelope {
            from: from.into(),
            to: to.into(),
            msg_id,
            correlation: None,
            body,
        }
    }

    /// Creates a response envelope correlated to `request`.
    pub fn respond<A>(request: &Envelope<A>, msg_id: u64, body: B) -> Self {
        Envelope {
            from: request.to.clone(),
            to: request.from.clone(),
            msg_id,
            correlation: Some(request.msg_id),
            body,
        }
    }

    /// Maps the body type, keeping headers.
    pub fn map_body<C>(self, f: impl FnOnce(B) -> C) -> Envelope<C> {
        Envelope {
            from: self.from,
            to: self.to,
            msg_id: self.msg_id,
            correlation: self.correlation,
            body: f(self.body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_correlation() {
        let req = Envelope::request("pep.a", "pdp.a", 1, "query".to_string());
        let resp = Envelope::respond(&req, 2, "decision".to_string());
        assert_eq!(resp.from, "pdp.a");
        assert_eq!(resp.to, "pep.a");
        assert_eq!(resp.correlation, Some(1));
    }

    #[test]
    fn codec_roundtrip() {
        let env = Envelope::request("a", "b", 7, vec![1u8, 2, 3]);
        let bytes = crate::codec::to_bytes(&env).unwrap();
        let back: Envelope<Vec<u8>> = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(env, back);
    }

    #[test]
    fn map_body_keeps_headers() {
        let env = Envelope::request("a", "b", 7, 5u32).map_body(|n| n.to_string());
        assert_eq!(env.body, "5");
        assert_eq!(env.msg_id, 7);
    }
}
