//! # dacs-wire
//!
//! Wire substrate for the DACS reproduction of *Architecting Dependable
//! Access Control Systems for Multi-Domain Computing Environments*
//! (DSN 2008): the message encoding and message-level security layer the
//! paper assumes from SOAP/WS-Security.
//!
//! * [`codec`] — a compact binary serde codec (full round-trip); the
//!   functional wire format.
//! * [`xmlish`] — an XML-like verbose encoder used to measure the size
//!   overhead the paper attributes to XML encoding (§3.2).
//! * [`base64`] — RFC 4648 base64 for binary-in-text expansion.
//! * [`envelope`] — routed message envelopes with correlation ids.
//! * [`security`] — plain / signed / signed+encrypted channel
//!   protection with replay detection (the WS-Security stand-in).
//!
//! # Examples
//!
//! ```
//! use dacs_wire::envelope::Envelope;
//!
//! let env = Envelope::request("pep.a", "pdp.a", 1, "query".to_string());
//! let bytes = dacs_wire::codec::to_bytes(&env)?;
//! let back: Envelope<String> = dacs_wire::codec::from_bytes(&bytes)?;
//! assert_eq!(env, back);
//! # Ok::<(), dacs_wire::codec::CodecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base64;
pub mod codec;
pub mod envelope;
pub mod security;
pub mod xmlish;

pub use codec::{from_bytes, to_bytes, CodecError};
pub use envelope::Envelope;
pub use security::{SecureChannel, SecureMessage, SecurityError, SecurityMode};
