//! Message-level security: the WS-Security stand-in (§2.3, §3.2).
//!
//! A [`SecureChannel`] wraps encoded payload bytes in a
//! [`SecureMessage`]: optionally encrypted (ChaCha20 under a shared
//! channel key) and optionally signed (detached signature over the
//! possibly-encrypted payload plus header fields). Receivers verify the
//! signature against the expected peer key and decrypt — failure of
//! either step must be treated as a deny by dependable enforcement
//! points.
//!
//! The security modes line up with the configurations the paper's cited
//! measurement study (Juric et al.) compares: plain, signed, and
//! signed+encrypted; experiment E7 regenerates that comparison.

use dacs_crypto::chacha20;
use dacs_crypto::sign::{CryptoCtx, PublicKey, Signature, SigningKey};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How much protection a channel applies to messages.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SecurityMode {
    /// No protection (baseline).
    Plain,
    /// Detached signature over the payload.
    Signed,
    /// Encrypt, then sign the ciphertext.
    SignedEncrypted,
}

impl SecurityMode {
    /// All modes, for sweeps.
    pub const ALL: [SecurityMode; 3] = [
        SecurityMode::Plain,
        SecurityMode::Signed,
        SecurityMode::SignedEncrypted,
    ];

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            SecurityMode::Plain => "plain",
            SecurityMode::Signed => "signed",
            SecurityMode::SignedEncrypted => "signed+encrypted",
        }
    }
}

/// A protected message as it travels on the wire.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SecureMessage {
    /// Identity of the sender (used to look up the verification key).
    pub sender: String,
    /// Monotonic sequence number (replay detection).
    pub sequence: u64,
    /// Whether `payload` is ciphertext.
    pub encrypted: bool,
    /// ChaCha20 nonce when encrypted.
    pub nonce: Option<[u8; 12]>,
    /// The (possibly encrypted) payload bytes.
    pub payload: Vec<u8>,
    /// Detached signature over `(sender, sequence, encrypted, payload)`.
    pub signature: Option<Signature>,
}

impl SecureMessage {
    /// Total bytes this message occupies on the wire (header + payload +
    /// signature), matching what experiments report.
    pub fn wire_len(&self) -> usize {
        let sig = self
            .signature
            .as_ref()
            .map(Signature::byte_len)
            .unwrap_or(0);
        let nonce = if self.nonce.is_some() { 12 } else { 0 };
        self.sender.len() + 8 + 1 + nonce + self.payload.len() + sig + 16
    }

    fn signed_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + self.sender.len() + 16);
        out.extend_from_slice(self.sender.as_bytes());
        out.push(0);
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.push(self.encrypted as u8);
        if let Some(n) = &self.nonce {
            out.extend_from_slice(n);
        }
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Errors from unwrapping a protected message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SecurityError {
    /// Signature missing although the channel requires one.
    MissingSignature,
    /// Signature verification failed.
    BadSignature,
    /// Message was not encrypted although the channel requires it.
    NotEncrypted,
    /// Encrypted flag set but no nonce present.
    MissingNonce,
    /// Replayed or out-of-order sequence number.
    Replay {
        /// Sequence received.
        got: u64,
        /// Lowest acceptable sequence.
        expected_at_least: u64,
    },
    /// Sender identity unknown to the receiving channel.
    UnknownSender(String),
}

impl std::fmt::Display for SecurityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SecurityError::MissingSignature => write!(f, "message lacks required signature"),
            SecurityError::BadSignature => write!(f, "signature verification failed"),
            SecurityError::NotEncrypted => write!(f, "message lacks required encryption"),
            SecurityError::MissingNonce => write!(f, "encrypted message lacks nonce"),
            SecurityError::Replay {
                got,
                expected_at_least,
            } => write!(
                f,
                "replayed sequence {got} (expected >= {expected_at_least})"
            ),
            SecurityError::UnknownSender(s) => write!(f, "unknown sender {s}"),
        }
    }
}

impl std::error::Error for SecurityError {}

/// One endpoint's view of a secured channel to a peer.
///
/// Mirrors the paper's mutual-authentication requirement for PEP↔PDP
/// links (§3.2 "Location of Policy Decision Points"): each side signs
/// with its own key and verifies with the peer's registered key.
pub struct SecureChannel {
    /// This endpoint's identity string.
    pub local_id: String,
    mode: SecurityMode,
    ctx: CryptoCtx,
    signer: Option<Arc<SigningKey>>,
    /// Peer identity → verification key.
    peer_keys: Vec<(String, PublicKey)>,
    enc_key: Option<[u8; 32]>,
    send_seq: u64,
    recv_high: u64,
    nonce_counter: u64,
}

impl SecureChannel {
    /// Creates a plaintext channel (no keys needed).
    pub fn plain(local_id: impl Into<String>, ctx: CryptoCtx) -> Self {
        SecureChannel {
            local_id: local_id.into(),
            mode: SecurityMode::Plain,
            ctx,
            signer: None,
            peer_keys: Vec::new(),
            enc_key: None,
            send_seq: 0,
            recv_high: 0,
            nonce_counter: 0,
        }
    }

    /// Creates a signing channel.
    pub fn signed(local_id: impl Into<String>, ctx: CryptoCtx, signer: Arc<SigningKey>) -> Self {
        let mut ch = Self::plain(local_id, ctx);
        ch.mode = SecurityMode::Signed;
        ch.signer = Some(signer);
        ch
    }

    /// Creates a signing + encrypting channel with a shared secret.
    ///
    /// The ChaCha20 key is derived from the shared secret and the
    /// channel label so that each direction can use a distinct key.
    pub fn signed_encrypted(
        local_id: impl Into<String>,
        ctx: CryptoCtx,
        signer: Arc<SigningKey>,
        shared_secret: &[u8],
        label: &str,
    ) -> Self {
        let mut ch = Self::signed(local_id, ctx, signer);
        ch.mode = SecurityMode::SignedEncrypted;
        ch.enc_key = Some(chacha20::derive_key(shared_secret, label));
        ch
    }

    /// The channel's protection mode.
    pub fn mode(&self) -> SecurityMode {
        self.mode
    }

    /// Registers a peer's verification key.
    pub fn add_peer(&mut self, id: impl Into<String>, key: PublicKey) {
        self.peer_keys.push((id.into(), key));
    }

    /// Protects payload bytes for sending.
    ///
    /// # Errors
    ///
    /// [`dacs_crypto::SignError`] if the signing key is exhausted.
    pub fn wrap(&mut self, payload: &[u8]) -> Result<SecureMessage, dacs_crypto::SignError> {
        self.send_seq += 1;
        let mut msg = SecureMessage {
            sender: self.local_id.clone(),
            sequence: self.send_seq,
            encrypted: false,
            nonce: None,
            payload: payload.to_vec(),
            signature: None,
        };
        if self.mode == SecurityMode::SignedEncrypted {
            let key = self.enc_key.expect("encrypted mode always has a key");
            self.nonce_counter += 1;
            let mut nonce = [0u8; 12];
            nonce[..8].copy_from_slice(&self.nonce_counter.to_be_bytes());
            chacha20::apply_keystream(&key, &nonce, 1, &mut msg.payload);
            msg.encrypted = true;
            msg.nonce = Some(nonce);
        }
        if self.mode != SecurityMode::Plain {
            let signer = self.signer.as_ref().expect("signed modes have a signer");
            msg.signature = Some(signer.sign(&msg.signed_bytes())?);
        }
        Ok(msg)
    }

    /// Verifies and decrypts a received message, returning payload bytes.
    ///
    /// # Errors
    ///
    /// Any [`SecurityError`]; dependable receivers treat all of them as
    /// deny (fail-safe).
    pub fn unwrap(&mut self, msg: &SecureMessage) -> Result<Vec<u8>, SecurityError> {
        if self.mode != SecurityMode::Plain {
            let sig = msg
                .signature
                .as_ref()
                .ok_or(SecurityError::MissingSignature)?;
            let key = self
                .peer_keys
                .iter()
                .find(|(id, _)| *id == msg.sender)
                .map(|(_, k)| k)
                .ok_or_else(|| SecurityError::UnknownSender(msg.sender.clone()))?;
            if !self.ctx.verify(key, &msg.signed_bytes(), sig) {
                return Err(SecurityError::BadSignature);
            }
            if msg.sequence <= self.recv_high {
                return Err(SecurityError::Replay {
                    got: msg.sequence,
                    expected_at_least: self.recv_high + 1,
                });
            }
            self.recv_high = msg.sequence;
        }
        let mut payload = msg.payload.clone();
        if self.mode == SecurityMode::SignedEncrypted {
            if !msg.encrypted {
                return Err(SecurityError::NotEncrypted);
            }
            let nonce = msg.nonce.ok_or(SecurityError::MissingNonce)?;
            let key = self.enc_key.expect("encrypted mode always has a key");
            chacha20::apply_keystream(&key, &nonce, 1, &mut payload);
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Pair {
        a: SecureChannel,
        b: SecureChannel,
    }

    fn signed_pair(mode: SecurityMode) -> Pair {
        let ctx = CryptoCtx::new();
        let mut rng = StdRng::seed_from_u64(42);
        let key_a = Arc::new(SigningKey::generate_sim(ctx.registry(), &mut rng));
        let key_b = Arc::new(SigningKey::generate_sim(ctx.registry(), &mut rng));
        let secret = b"handshake-derived-secret";
        let (mut a, mut b) = match mode {
            SecurityMode::Plain => (
                SecureChannel::plain("pep.a", ctx.clone()),
                SecureChannel::plain("pdp.a", ctx.clone()),
            ),
            SecurityMode::Signed => (
                SecureChannel::signed("pep.a", ctx.clone(), key_a.clone()),
                SecureChannel::signed("pdp.a", ctx.clone(), key_b.clone()),
            ),
            SecurityMode::SignedEncrypted => (
                SecureChannel::signed_encrypted(
                    "pep.a",
                    ctx.clone(),
                    key_a.clone(),
                    secret,
                    "pep->pdp",
                ),
                SecureChannel::signed_encrypted(
                    "pdp.a",
                    ctx.clone(),
                    key_b.clone(),
                    secret,
                    "pep->pdp",
                ),
            ),
        };
        a.add_peer("pdp.a", key_b.public_key());
        b.add_peer("pep.a", key_a.public_key());
        Pair { a, b }
    }

    #[test]
    fn plain_roundtrip() {
        let mut p = signed_pair(SecurityMode::Plain);
        let msg = p.a.wrap(b"decision query").unwrap();
        assert_eq!(p.b.unwrap(&msg).unwrap(), b"decision query");
        assert!(msg.signature.is_none());
        assert!(!msg.encrypted);
    }

    #[test]
    fn signed_roundtrip_and_tamper_detection() {
        let mut p = signed_pair(SecurityMode::Signed);
        let msg = p.a.wrap(b"decision query").unwrap();
        assert!(msg.signature.is_some());
        assert_eq!(p.b.unwrap(&msg).unwrap(), b"decision query");

        let mut tampered = p.a.wrap(b"another").unwrap();
        tampered.payload[0] ^= 1;
        assert_eq!(p.b.unwrap(&tampered), Err(SecurityError::BadSignature));
    }

    #[test]
    fn encrypted_roundtrip_hides_plaintext() {
        let mut p = signed_pair(SecurityMode::SignedEncrypted);
        let msg = p.a.wrap(b"secret policy content").unwrap();
        assert!(msg.encrypted);
        assert_ne!(msg.payload, b"secret policy content");
        assert_eq!(p.b.unwrap(&msg).unwrap(), b"secret policy content");
    }

    #[test]
    fn replay_rejected() {
        let mut p = signed_pair(SecurityMode::Signed);
        let m1 = p.a.wrap(b"one").unwrap();
        let m2 = p.a.wrap(b"two").unwrap();
        assert!(p.b.unwrap(&m2).is_ok());
        assert!(matches!(p.b.unwrap(&m1), Err(SecurityError::Replay { .. })));
    }

    #[test]
    fn unknown_sender_rejected() {
        let mut p = signed_pair(SecurityMode::Signed);
        let mut msg = p.a.wrap(b"one").unwrap();
        msg.sender = "rogue".into();
        assert_eq!(
            p.b.unwrap(&msg),
            Err(SecurityError::UnknownSender("rogue".into()))
        );
    }

    #[test]
    fn stripped_signature_rejected() {
        let mut p = signed_pair(SecurityMode::Signed);
        let mut msg = p.a.wrap(b"one").unwrap();
        msg.signature = None;
        assert_eq!(p.b.unwrap(&msg), Err(SecurityError::MissingSignature));
    }

    #[test]
    fn downgrade_to_plaintext_rejected() {
        let mut p = signed_pair(SecurityMode::SignedEncrypted);
        // Re-sign is impossible for the attacker, but even a cooperative
        // sender that forgets encryption must be rejected.
        let ctx = CryptoCtx::new();
        let mut rng = StdRng::seed_from_u64(9);
        let key_a = Arc::new(SigningKey::generate_sim(ctx.registry(), &mut rng));
        let mut plain_sender = SecureChannel::signed("pep.a", ctx.clone(), key_a.clone());
        p.b.add_peer("pep.a", key_a.public_key());
        // Replace b's context so the new key verifies.
        let msg = plain_sender.wrap(b"oops").unwrap();
        let r = p.b.unwrap(&msg);
        // Either bad signature (different registry) or not-encrypted —
        // both are fail-safe rejections.
        assert!(r.is_err());
    }

    #[test]
    fn wire_len_ordering_matches_modes() {
        let payload = vec![0u8; 256];
        let mut plain = signed_pair(SecurityMode::Plain);
        let mut signed = signed_pair(SecurityMode::Signed);
        let mut enc = signed_pair(SecurityMode::SignedEncrypted);
        let lp = plain.a.wrap(&payload).unwrap().wire_len();
        let ls = signed.a.wrap(&payload).unwrap().wire_len();
        let le = enc.a.wrap(&payload).unwrap().wire_len();
        assert!(lp < ls, "signature adds size: {lp} vs {ls}");
        assert!(ls <= le, "nonce adds size: {ls} vs {le}");
    }

    #[test]
    fn each_message_gets_fresh_nonce() {
        let mut p = signed_pair(SecurityMode::SignedEncrypted);
        let m1 = p.a.wrap(b"same plaintext").unwrap();
        let m2 = p.a.wrap(b"same plaintext").unwrap();
        assert_ne!(m1.nonce, m2.nonce);
        assert_ne!(m1.payload, m2.payload);
    }
}
