//! An XML-like *verbose* encoder modelling the SOAP/XACML message
//! encoding of the paper's environment.
//!
//! The paper (§3.2 "Communication Performance") observes that
//! XML-encoded policies and security-enhanced messages are significantly
//! larger than binary encodings. This serializer produces a faithful
//! XML-style rendering of any `Serialize` value — element tags per
//! field, numbers in decimal text, binary in base64 — so experiments can
//! measure the real size ratio between compact and verbose encodings of
//! identical protocol messages.
//!
//! Encoding-only by design: functional message exchange in the simulator
//! always uses [`crate::codec`]; this encoder exists to measure what the
//! same message *would* cost as XML (documented in DESIGN.md §3).

use crate::base64;
use serde::{ser, Serialize};
use std::fmt;

/// Error type for the XML-ish encoder.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct XmlishError(String);

impl fmt::Display for XmlishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for XmlishError {}

impl ser::Error for XmlishError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        XmlishError(msg.to_string())
    }
}

/// Renders a value as XML-ish text.
///
/// # Errors
///
/// Fails only for unsized sequences, which protocol messages never
/// contain.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, XmlishError> {
    let mut ser = XmlSerializer {
        out: String::with_capacity(256),
    };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Size in bytes of the XML-ish rendering (the verbose-codec size used
/// by wire accounting).
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn encoded_len<T: Serialize>(value: &T) -> Result<usize, XmlishError> {
    Ok(to_string(value)?.len())
}

struct XmlSerializer {
    out: String,
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

impl XmlSerializer {
    fn scalar(&mut self, ty: &str, value: impl fmt::Display) {
        self.out.push('<');
        self.out.push_str(ty);
        self.out.push('>');
        let _ = std::fmt::Write::write_fmt(&mut self.out, format_args!("{value}"));
        self.out.push_str("</");
        self.out.push_str(ty);
        self.out.push('>');
    }

    fn open(&mut self, tag: &str) {
        self.out.push('<');
        self.out.push_str(tag);
        self.out.push('>');
    }

    fn close(&mut self, tag: &str) {
        self.out.push_str("</");
        self.out.push_str(tag);
        self.out.push('>');
    }
}

impl<'a> ser::Serializer for &'a mut XmlSerializer {
    type Ok = ();
    type Error = XmlishError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = CompoundOuter<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = CompoundOuter<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), XmlishError> {
        self.scalar("boolean", v);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), XmlishError> {
        self.scalar("byte", v);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), XmlishError> {
        self.scalar("short", v);
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), XmlishError> {
        self.scalar("int", v);
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), XmlishError> {
        self.scalar("long", v);
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), XmlishError> {
        self.scalar("unsignedByte", v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), XmlishError> {
        self.scalar("unsignedShort", v);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), XmlishError> {
        self.scalar("unsignedInt", v);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), XmlishError> {
        self.scalar("unsignedLong", v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), XmlishError> {
        self.scalar("float", v);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), XmlishError> {
        self.scalar("double", v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), XmlishError> {
        let mut buf = [0u8; 4];
        self.serialize_str(v.encode_utf8(&mut buf))
    }
    fn serialize_str(self, v: &str) -> Result<(), XmlishError> {
        self.open("string");
        escape_into(v, &mut self.out);
        self.close("string");
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), XmlishError> {
        self.open("base64Binary");
        self.out.push_str(&base64::encode(v));
        self.close("base64Binary");
        Ok(())
    }
    fn serialize_none(self) -> Result<(), XmlishError> {
        self.out.push_str("<nil/>");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), XmlishError> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), XmlishError> {
        self.out.push_str("<unit/>");
        Ok(())
    }
    fn serialize_unit_struct(self, name: &'static str) -> Result<(), XmlishError> {
        self.out.push('<');
        self.out.push_str(name);
        self.out.push_str("/>");
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), XmlishError> {
        self.open(name);
        self.out.push('<');
        self.out.push_str(variant);
        self.out.push_str("/>");
        self.close(name);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<(), XmlishError> {
        self.open(name);
        value.serialize(&mut *self)?;
        self.close(name);
        Ok(())
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), XmlishError> {
        self.open(name);
        self.open(variant);
        value.serialize(&mut *self)?;
        self.close(variant);
        self.close(name);
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, XmlishError> {
        self.open("sequence");
        Ok(Compound {
            ser: self,
            closing: "sequence",
            item_tag: Some("item"),
        })
    }
    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>, XmlishError> {
        self.open("tuple");
        Ok(Compound {
            ser: self,
            closing: "tuple",
            item_tag: Some("item"),
        })
    }
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, XmlishError> {
        self.open(name);
        Ok(Compound {
            ser: self,
            closing: name,
            item_tag: Some("item"),
        })
    }
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<CompoundOuter<'a>, XmlishError> {
        self.open(name);
        self.open(variant);
        Ok(Compound {
            ser: self,
            closing: variant, // `name` closed via closing_outer
            item_tag: Some("item"),
        }
        .with_outer(name))
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, XmlishError> {
        self.open("map");
        Ok(Compound {
            ser: self,
            closing: "map",
            item_tag: Some("entry"),
        })
    }
    fn serialize_struct(
        self,
        name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, XmlishError> {
        self.open(name);
        Ok(Compound {
            ser: self,
            closing: name,
            item_tag: None,
        })
    }
    fn serialize_struct_variant(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<CompoundOuter<'a>, XmlishError> {
        self.open(name);
        self.open(variant);
        Ok(Compound {
            ser: self,
            closing: variant,
            item_tag: None,
        }
        .with_outer(name))
    }
}

/// Compound serialization state for the XML-ish encoder.
pub struct Compound<'a> {
    ser: &'a mut XmlSerializer,
    closing: &'static str,
    item_tag: Option<&'static str>,
}

impl<'a> Compound<'a> {
    fn with_outer(self, outer: &'static str) -> CompoundOuter<'a> {
        CompoundOuter { inner: self, outer }
    }

    fn element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), XmlishError> {
        if let Some(tag) = self.item_tag {
            self.ser.open(tag);
            value.serialize(&mut *self.ser)?;
            self.ser.close(tag);
        } else {
            value.serialize(&mut *self.ser)?;
        }
        Ok(())
    }

    fn named_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), XmlishError> {
        self.ser.open(key);
        value.serialize(&mut *self.ser)?;
        self.ser.close(key);
        Ok(())
    }

    fn finish(self) -> &'a mut XmlSerializer {
        self.ser.close(self.closing);
        self.ser
    }
}

impl<'a> ser::SerializeSeq for Compound<'a> {
    type Ok = ();
    type Error = XmlishError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), XmlishError> {
        self.element(value)
    }
    fn end(self) -> Result<(), XmlishError> {
        self.finish();
        Ok(())
    }
}

impl<'a> ser::SerializeTuple for Compound<'a> {
    type Ok = ();
    type Error = XmlishError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), XmlishError> {
        self.element(value)
    }
    fn end(self) -> Result<(), XmlishError> {
        self.finish();
        Ok(())
    }
}

impl<'a> ser::SerializeTupleStruct for Compound<'a> {
    type Ok = ();
    type Error = XmlishError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), XmlishError> {
        self.element(value)
    }
    fn end(self) -> Result<(), XmlishError> {
        self.finish();
        Ok(())
    }
}

impl<'a> ser::SerializeMap for Compound<'a> {
    type Ok = ();
    type Error = XmlishError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), XmlishError> {
        self.ser.open("key");
        key.serialize(&mut *self.ser)?;
        self.ser.close("key");
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), XmlishError> {
        self.ser.open("value");
        value.serialize(&mut *self.ser)?;
        self.ser.close("value");
        Ok(())
    }
    fn end(self) -> Result<(), XmlishError> {
        self.finish();
        Ok(())
    }
}

impl<'a> ser::SerializeStruct for Compound<'a> {
    type Ok = ();
    type Error = XmlishError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), XmlishError> {
        self.named_field(key, value)
    }
    fn end(self) -> Result<(), XmlishError> {
        self.finish();
        Ok(())
    }
}

/// Compound with an extra outer tag (variants).
pub struct CompoundOuter<'a> {
    inner: Compound<'a>,
    outer: &'static str,
}

impl<'a> ser::SerializeTupleVariant for CompoundOuter<'a> {
    type Ok = ();
    type Error = XmlishError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), XmlishError> {
        self.inner.element(value)
    }
    fn end(self) -> Result<(), XmlishError> {
        let outer = self.outer;
        let ser = self.inner.finish();
        ser.close(outer);
        Ok(())
    }
}

impl<'a> ser::SerializeStructVariant for CompoundOuter<'a> {
    type Ok = ();
    type Error = XmlishError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), XmlishError> {
        self.inner.named_field(key, value)
    }
    fn end(self) -> Result<(), XmlishError> {
        let outer = self.outer;
        let ser = self.inner.finish();
        ser.close(outer);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Query {
        subject: String,
        resource: String,
        action: String,
        urgent: bool,
    }

    #[test]
    fn struct_renders_with_field_tags() {
        let q = Query {
            subject: "alice".into(),
            resource: "ehr/1".into(),
            action: "read".into(),
            urgent: false,
        };
        let xml = to_string(&q).unwrap();
        assert!(xml.starts_with("<Query>"));
        assert!(xml.contains("<subject><string>alice</string></subject>"));
        assert!(xml.contains("<urgent><boolean>false</boolean></urgent>"));
        assert!(xml.ends_with("</Query>"));
    }

    #[test]
    fn escaping() {
        let xml = to_string(&"<a&b>".to_string()).unwrap();
        assert_eq!(xml, "<string>&lt;a&amp;b&gt;</string>");
    }

    #[test]
    fn verbose_exceeds_compact() {
        let q = Query {
            subject: "alice".into(),
            resource: "ehr/records/42".into(),
            action: "read".into(),
            urgent: true,
        };
        let compact = crate::codec::to_bytes(&q).unwrap().len();
        let verbose = encoded_len(&q).unwrap();
        assert!(
            verbose > 3 * compact,
            "verbose {verbose} should dwarf compact {compact}"
        );
    }

    #[derive(Serialize)]
    enum Kind {
        Plain,
        Pair(u32, u32),
        Rec { x: u8 },
        Wrapped(String),
    }

    #[test]
    fn enum_variants_render() {
        assert_eq!(to_string(&Kind::Plain).unwrap(), "<Kind><Plain/></Kind>");
        assert_eq!(
            to_string(&Kind::Pair(1, 2)).unwrap(),
            "<Kind><Pair><item><unsignedInt>1</unsignedInt></item>\
<item><unsignedInt>2</unsignedInt></item></Pair></Kind>"
        );
        assert_eq!(
            to_string(&Kind::Rec { x: 3 }).unwrap(),
            "<Kind><Rec><x><unsignedByte>3</unsignedByte></x></Rec></Kind>"
        );
        assert!(to_string(&Kind::Wrapped("w".into()))
            .unwrap()
            .contains("<Wrapped><string>w</string></Wrapped>"));
    }

    #[test]
    fn sequences_and_options() {
        let xml = to_string(&vec![1u8, 2]).unwrap();
        assert_eq!(
            xml,
            "<sequence><item><unsignedByte>1</unsignedByte></item>\
<item><unsignedByte>2</unsignedByte></item></sequence>"
        );
        assert_eq!(to_string(&Option::<u8>::None).unwrap(), "<nil/>");
    }

    #[test]
    fn binary_becomes_base64() {
        // Without serde_bytes, Vec<u8> serializes as a sequence; emulate
        // bytes by serializing a slice through serialize_bytes directly.
        struct Raw<'a>(&'a [u8]);
        impl Serialize for Raw<'_> {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_bytes(self.0)
            }
        }
        let xml = to_string(&Raw(b"Man")).unwrap();
        assert_eq!(xml, "<base64Binary>TWFu</base64Binary>");
    }
}
