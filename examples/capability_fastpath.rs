//! The signed capability fast path end to end: a clustered domain
//! mints an HMAC token on the first permit, the PEP verifies locally
//! (skipping the quorum) until a policy push bumps the epoch and
//! revokes every outstanding token in the same tick.
//!
//! Run with: `cargo run --example capability_fastpath`

use dacs::cluster::{ClusterBuilder, QuorumMode};
use dacs::core::scenario::alternating_lockdown_gate;
use dacs::crypto::sign::CryptoCtx;
use dacs::federation::Domain;
use dacs::pep::EnforceRequest;
use dacs::policy::request::RequestContext;

fn main() {
    let ctx = CryptoCtx::new();
    let mut builder = Domain::builder("clinic")
        .policy(alternating_lockdown_gate("clinic", 0))
        .clustered(
            ClusterBuilder::new("clinic")
                .quorum(QuorumMode::Majority)
                .resync(true),
        )
        .cluster_topology(1, 3)
        // Opt in to the fast path: tokens live for an hour of sim time.
        .capability(3_600_000)
        .seed(42);
    for u in 0..4 {
        builder = builder.subject_attr(&format!("user-{u}@clinic"), "role", "doctor");
    }
    let domain = builder.build(&ctx);
    let authority = domain.capability.clone().expect("capability enabled");

    // First enforcement: quorum decides, the authority mints a token.
    let req = RequestContext::basic("user-0@clinic", "records/7", "read");
    assert!(domain.pep.serve(EnforceRequest::of(&req, 0)).allowed);
    println!(
        "after first permit: minted={} cluster_queries={}",
        authority.stats().minted,
        domain.cluster.as_ref().unwrap().metrics().queries
    );

    // The next ten enforcements verify locally — no quorum fan-out.
    for t in 1..=10 {
        assert!(domain.pep.serve(EnforceRequest::of(&req, t)).allowed);
    }
    let stats = domain.pep.stats();
    println!(
        "after ten more: token_hits={} cluster_queries={}",
        stats.token_hits,
        domain.cluster.as_ref().unwrap().metrics().queries
    );

    // A policy push — here an admin-only lockdown — rides the
    // syndication tree, bumps the policy epoch, and every outstanding
    // token is stale the same tick.
    let epoch = domain.propagate_policy(alternating_lockdown_gate("clinic", 1), 20);
    println!("lockdown pushed: epoch now {}", epoch.0);
    assert!(!domain.pep.serve(EnforceRequest::of(&req, 20)).allowed);
    let stats = domain.pep.stats();
    println!(
        "same tick: token_rejects={} stale_rejects={} (access denied)",
        stats.token_rejects,
        authority.stats().rejected_stale_epoch
    );

    // Lifting the lockdown permits again under a fresh token.
    domain.propagate_policy(alternating_lockdown_gate("clinic", 2), 30);
    assert!(domain.pep.serve(EnforceRequest::of(&req, 30)).allowed);
    println!(
        "lockdown lifted: minted={} (fresh token at the new epoch)",
        authority.stats().minted
    );
}
