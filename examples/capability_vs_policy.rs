//! The two authorization architectures of the paper side by side:
//! capability-issuing / push (Fig. 2) versus policy-issuing / pull
//! (Fig. 3), with measured message counts, bytes and latency.
//!
//! Run with: `cargo run --example capability_vs_policy`

use dacs::core::scenario::{healthcare_vo, with_shared_cas};
use dacs::crypto::sign::CryptoCtx;
use dacs::federation::{
    issue_capability_flow, push_flow, request_flow, FlowKind, FlowNet, SizeModel,
};
use dacs::simnet::LinkSpec;

fn main() {
    let ctx = CryptoCtx::new();
    let vo = with_shared_cas(healthcare_vo(2, 10, &ctx), 3_600_000);
    let mut fnet = FlowNet::build(&vo, 11, LinkSpec::lan(), LinkSpec::wan());
    let subject = "user-1@domain-1";
    let k = 8u64;

    // --- Pull (Fig. 3): every request pays the decision round trip. ---
    let (mut msgs, mut bytes, mut lat) = (0u64, 0u64, 0u64);
    for i in 0..k {
        let t = request_flow(
            &mut fnet,
            &vo,
            FlowKind::Pull,
            subject,
            0,
            &format!("records/{i}"),
            "read",
            i,
            SizeModel::Compact,
        );
        assert!(t.allowed);
        msgs += t.messages;
        bytes += t.bytes;
        lat += t.latency_us;
    }
    println!(
        "pull  (Fig. 3): {k} requests -> {msgs} msgs, {bytes} bytes, avg lat {:.2} ms",
        lat as f64 / k as f64 / 1000.0
    );

    // --- Push (Fig. 2): one capability, then lightweight requests. ---
    let (cap, issue) = issue_capability_flow(
        &mut fnet,
        &vo,
        subject,
        "shared/*",
        &["read".to_string()],
        "domain-0",
        0,
        SizeModel::Compact,
    );
    let cap = cap.expect("pre-screening permits shared reads");
    println!(
        "push  (Fig. 2): issuance -> {} msgs, {} bytes (capability: {} bytes on the wire)",
        issue.messages,
        issue.bytes,
        cap.wire_len(),
    );
    let (mut msgs, mut bytes, mut lat) = (issue.messages, issue.bytes, 0u64);
    for i in 0..k {
        let t = push_flow(
            &mut fnet,
            &vo,
            subject,
            0,
            &format!("shared/{i}"),
            "read",
            &cap,
            100 + i,
            SizeModel::Compact,
        );
        assert!(t.allowed);
        msgs += t.messages;
        bytes += t.bytes;
        lat += t.latency_us;
    }
    println!("push  (Fig. 2): {k} requests -> {msgs} msgs (incl. issuance), {bytes} bytes, avg lat {:.2} ms",
        lat as f64 / k as f64 / 1000.0);

    // --- Autonomy: a capability never overrides a local deny. ---
    let t = push_flow(
        &mut fnet,
        &vo,
        subject,
        0,
        "records/1",
        "write",
        &cap,
        999,
        SizeModel::Compact,
    );
    println!(
        "push on locally-governed resource records/1 (write): {}",
        if t.allowed {
            "ALLOW (unexpected!)"
        } else {
            "DENY — resource autonomy wins"
        }
    );
}
