//! Cluster failover: shard a decision service over replicated PDPs,
//! kill replicas mid-run, and watch the cluster route around them —
//! while the quorum keeps a stale replica from leaking permits.
//!
//! Run with: `cargo run --example cluster_failover`

use dacs::cluster::{ClusterBuilder, DecisionBackend, QuorumMode};
use dacs::pap::Pap;
use dacs::pdp::{CacheConfig, Pdp};
use dacs::pip::{PipRegistry, StaticAttributes};
use dacs::policy::dsl::parse_policy;
use dacs::policy::policy::{Decision, PolicyElement, PolicyId};
use dacs::policy::request::RequestContext;
use std::sync::Arc;

fn main() {
    // 1. The current policy: only doctors read records.
    let pap = Arc::new(Pap::new("pap.clinic"));
    let gate = parse_policy(
        r#"
policy "gate" deny-unless-permit {
  rule "doctors" permit {
    condition is-in("doctor", attr(subject, "role"))
  }
}
"#,
    )
    .expect("policy parses");
    pap.submit("admin", gate, 0).unwrap();

    // A stale PAP that missed the lockdown and still permits everyone.
    let stale_pap = Arc::new(Pap::new("pap.stale"));
    let permissive = parse_policy(
        r#"
policy "gate" deny-unless-permit {
  rule "everyone" permit { }
}
"#,
    )
    .expect("policy parses");
    stale_pap.submit("admin", permissive, 0).unwrap();

    let statics = Arc::new(StaticAttributes::new());
    statics.add_subject_attr("dr-grey", "role", "doctor");
    let mut pips = PipRegistry::new();
    pips.add(statics);
    let pips = Arc::new(pips);
    let root = PolicyElement::PolicyRef(PolicyId::new("gate"));

    // 2. Two shards × three replicas; one replica per shard is stale.
    let mut builder = ClusterBuilder::new("clinic-pdp").quorum(QuorumMode::Majority);
    for s in 0..2 {
        let mut replicas: Vec<Arc<dyn DecisionBackend>> = vec![Arc::new(Pdp::new(
            format!("s{s}-stale"),
            stale_pap.clone(),
            root.clone(),
            pips.clone(),
        ))];
        for r in 0..2 {
            replicas.push(Arc::new(
                Pdp::new(
                    format!("s{s}-r{r}"),
                    pap.clone(),
                    root.clone(),
                    pips.clone(),
                )
                .with_cache(CacheConfig {
                    capacity: 256,
                    ttl_ms: 1_000,
                }),
            ));
        }
        builder = builder.shard(replicas);
    }
    let cluster = builder.build();

    let doctor = RequestContext::basic("dr-grey", "records/7", "read");
    let intruder = RequestContext::basic("mallory", "records/7", "read");
    let show = |label: &str, req: &RequestContext, t: u64| {
        let outcome = cluster.decide(req, t);
        match &outcome.response {
            Some(r) => println!(
                "  [{label}] shard {} via {} replica(s){} → {}",
                outcome.shard,
                outcome.replicas_queried,
                if outcome.degraded { " (degraded)" } else { "" },
                r.decision
            ),
            None => println!("  [{label}] shard {} → UNAVAILABLE", outcome.shard),
        }
    };

    println!("all replicas healthy (majority outvotes the stale replica):");
    show("doctor ", &doctor, 0);
    show("mallory", &intruder, 1);

    println!("\ncrash a fresh replica in each shard:");
    cluster.mark_down("s0-r0");
    cluster.mark_down("s1-r0");
    show("doctor ", &doctor, 2);
    show("mallory", &intruder, 3);

    println!("\ncrash the rest — whole shards go dark:");
    for name in ["s0-stale", "s0-r1", "s1-stale", "s1-r1"] {
        cluster.mark_down(name);
    }
    show("doctor ", &doctor, 4);

    println!("\nrecovery:");
    for name in ["s0-stale", "s0-r0", "s0-r1", "s1-stale", "s1-r0", "s1-r1"] {
        cluster.mark_up(name);
    }
    show("doctor ", &doctor, 5);

    let m = cluster.metrics();
    println!(
        "\nmetrics: {} queries, availability {:.1}%, degraded {:.1}%, \
         {} disagreements, fan-out {:.2} replicas/query",
        m.queries,
        100.0 * m.availability(),
        100.0 * m.degraded_rate(),
        m.disagreements,
        m.amplification()
    );
    assert_eq!(
        cluster.decide(&intruder, 6).response.unwrap().decision,
        Decision::Deny,
        "the stale replica must never carry a vote alone"
    );
}
