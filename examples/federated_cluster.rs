//! Federated per-domain PDP clusters under the VO flows: every domain
//! of a healthcare VO backs its PEP with a 3-replica majority shard
//! (replica PAPs are leaves of the domain's own syndication tree), all
//! replicas share one VO-wide directory, and enforcement rides the
//! per-shard batcher. Crash a replica, push a lockdown while it
//! sleeps, and watch the epoch-gated `Syncing` lifecycle keep its
//! stale vote out of the quorum until catch-up.
//!
//! Run with: `cargo run --release --example federated_cluster`

use dacs::cluster::{ClusterBuilder, QuorumMode};
use dacs::core::scenario::{alternating_lockdown_gate, clustered_healthcare_vo};
use dacs::crypto::sign::CryptoCtx;
use dacs::federation::{request_flow, Domain, FlowKind, FlowNet, SizeModel};
use dacs::pdp::PdpDirectory;
use dacs::pep::EnforceRequest;
use dacs::policy::dsl::parse_policy;
use dacs::policy::request::RequestContext;
use dacs::simnet::LinkSpec;
use std::sync::Arc;

fn main() {
    let ctx = CryptoCtx::new();
    let directory = Arc::new(PdpDirectory::new());
    let vo = clustered_healthcare_vo(3, 8, &ctx, directory.clone(), true, true);
    let mut fnet = FlowNet::build(&vo, 42, LinkSpec::lan(), LinkSpec::wan());

    println!("=== VO-wide discovery through the shared directory ===");
    for d in &vo.domains {
        println!("{}: replicas {:?}", d.name, directory.endpoints_in(&d.name));
    }

    // A cross-domain pull flow: user-1@domain-1 reads at domain-0. The
    // PEP routes the decision through domain-0's majority quorum.
    let pull = |fnet: &mut FlowNet, now: u64| {
        request_flow(
            fnet,
            &vo,
            FlowKind::Pull,
            "user-1@domain-1",
            0,
            "records/icu-7",
            "read",
            now,
            SizeModel::Compact,
        )
    };
    println!("\n=== cross-domain pull through the quorum ===");
    let trace = pull(&mut fnet, 0);
    println!(
        "doctor read at domain-0 → allowed={} ({} msgs, incl. federated attribute fetch)",
        trace.allowed, trace.messages
    );

    // One replica crashes: the quorum degrades but keeps answering.
    let d0 = &vo.domains[0];
    let names = d0.replica_names();
    d0.crash_replica(&names[1]);
    let trace = pull(&mut fnet, 1);
    let m = d0.cluster.as_ref().unwrap().metrics();
    println!(
        "with {} down → allowed={} (degraded queries so far: {})",
        names[1], trace.allowed, m.degraded
    );

    // The domain authority pushes a lockdown while the replica sleeps.
    let lockdown =
        parse_policy(r#"policy "domain-0-gate" first-applicable { rule "lockdown" deny { } }"#)
            .expect("lockdown parses");
    let epoch = d0.propagate_policy(lockdown, 10);
    println!("\n=== lockdown propagated at epoch {epoch} (one replica offline) ===");
    let trace = pull(&mut fnet, 11);
    println!("doctor read under lockdown → allowed={}", trace.allowed);

    // The crashed replica returns stale: epoch-gated into Syncing.
    d0.recover_replica(&names[1]);
    println!(
        "{} recovered → phase {:?} (stale, excluded from the quorum)",
        names[1],
        d0.replica_phase(&names[1]).unwrap().name()
    );
    let trace = pull(&mut fnet, 12);
    println!(
        "decision while it syncs → allowed={} (stale votes avoided: {})",
        trace.allowed,
        d0.cluster
            .as_ref()
            .unwrap()
            .metrics()
            .stale_decisions_avoided
    );

    // Anti-entropy: replay the missed updates, then readmit.
    let ok = d0.catch_up_replica(&names[1], 20);
    println!(
        "catch-up replayed → readmitted={ok}, phase {:?}",
        d0.replica_phase(&names[1]).unwrap().name()
    );

    let m = d0.cluster.as_ref().unwrap().metrics();
    println!(
        "\n=== domain-0 cluster metrics ===\n\
         queries {}, batches {} (every enforcement rode the batcher),\n\
         degraded {}, resyncs {}, stale votes avoided {}, peak epoch lag {}",
        m.queries, m.batches, m.degraded, m.resyncs, m.stale_decisions_avoided, m.epoch_lag_max
    );

    // The flows above are sequential, so each batch held one query. A
    // PEP-side batch window shows its worth under concurrency: eight
    // clients enforcing at once meet inside the window and flush as
    // one real batch through the quorum.
    println!("\n=== PEP-side batch window: concurrent enforcements coalesce ===");
    let telemetry = Arc::new(dacs::telemetry::Telemetry::new());
    let mut builder = Domain::builder("batch-demo")
        .policy(alternating_lockdown_gate("batch-demo", 0))
        .clustered(ClusterBuilder::new("batch-demo").quorum(QuorumMode::Majority))
        .cluster_topology(1, 3)
        .batch_window_us(5_000)
        .telemetry(telemetry.clone())
        .seed(7);
    for u in 0..8 {
        builder = builder.subject_attr(&format!("user-{u}@batch-demo"), "role", "doctor");
    }
    let demo = builder.build(&ctx);
    let barrier = std::sync::Barrier::new(8);
    std::thread::scope(|scope| {
        for w in 0..8u64 {
            let (demo, barrier) = (&demo, &barrier);
            scope.spawn(move || {
                let request = RequestContext::basic(
                    format!("user-{w}@batch-demo"),
                    format!("records/{}", w % 4),
                    "read",
                );
                barrier.wait();
                let outcome = demo
                    .pep
                    .serve(EnforceRequest::of(&request, 100).interactive());
                assert!(outcome.allowed, "doctors read records");
            });
        }
    });
    let bm = demo.cluster.as_ref().unwrap().metrics();
    let peak = telemetry
        .registry()
        .histogram("dacs_batch_size")
        .percentile(1.0);
    println!(
        "8 concurrent enforcements → {} flushes (largest batch {peak}, \
         {} queries batched)",
        bm.batches, bm.batched_queries
    );
    assert!(peak > 1, "the window must coalesce concurrent arrivals");
    println!(
        "\nThe VO flows never changed: the cluster sits behind each domain's\n\
         PEP, so pull/push/agent requests transparently ride quorum fan-out,\n\
         failover and batching — and a recovering stale replica can never\n\
         vote until the syndication tree has replayed what it missed."
    );
}
