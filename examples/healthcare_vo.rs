//! A multi-domain healthcare virtual organisation (the paper's Fig. 1):
//! N hospitals, federated identities, cross-domain authorization flows
//! over a simulated WAN, Chinese Wall conflict classes between
//! competing sites — with full message/byte/latency accounting.
//!
//! Run with: `cargo run --example healthcare_vo`

use dacs::core::scenario::healthcare_vo;
use dacs::crypto::sign::CryptoCtx;
use dacs::federation::{request_flow, ConflictClass, FlowKind, FlowNet, SizeModel};
use dacs::simnet::LinkSpec;

fn main() {
    let ctx = CryptoCtx::new();
    let mut vo = healthcare_vo(3, 20, &ctx);
    // domain-1 and domain-2 are competitors: one analyst may not see
    // both (Brewer–Nash Chinese Wall at VO level, §3.1).
    vo.add_conflict_class(ConflictClass {
        name: "competing-hospitals".into(),
        domains: ["domain-1".to_string(), "domain-2".to_string()]
            .into_iter()
            .collect(),
    });

    let mut fnet = FlowNet::build(&vo, 7, LinkSpec::lan(), LinkSpec::wan());

    let runs = [
        // (subject, target domain idx, resource, action, label)
        (
            "user-0@domain-0",
            0usize,
            "records/7",
            "read",
            "intra-domain doctor read",
        ),
        (
            "user-0@domain-0",
            1,
            "records/7",
            "read",
            "cross-domain doctor read",
        ),
        (
            "user-0@domain-0",
            1,
            "records/7",
            "write",
            "cross-domain write (local-only right)",
        ),
        (
            "user-19@domain-0",
            0,
            "records/7",
            "read",
            "auditor read (no doctor role)",
        ),
        (
            "user-0@domain-1",
            2,
            "records/9",
            "read",
            "wall: 2nd competitor after domain-1",
        ),
    ];

    println!(
        "{:<45} {:<6} {:>5} {:>7} {:>9}",
        "flow", "result", "msgs", "bytes", "lat(ms)"
    );
    for (i, (subject, target, resource, action, label)) in runs.iter().enumerate() {
        // The last run first touches domain-1 to arm the wall.
        if *label == "wall: 2nd competitor after domain-1" {
            let warmup = request_flow(
                &mut fnet,
                &vo,
                FlowKind::Pull,
                subject,
                1,
                "records/1",
                "read",
                1000 + i as u64,
                SizeModel::Compact,
            );
            assert!(warmup.allowed);
        }
        let trace = request_flow(
            &mut fnet,
            &vo,
            FlowKind::Pull,
            subject,
            *target,
            resource,
            action,
            i as u64,
            SizeModel::Compact,
        );
        println!(
            "{label:<45} {:<6} {:>5} {:>7} {:>9.2}",
            if trace.allowed { "ALLOW" } else { "DENY" },
            trace.messages,
            trace.bytes,
            trace.latency_us as f64 / 1000.0,
        );
    }

    // Every domain keeps a complete enforcement audit trail.
    for d in &vo.domains {
        println!(
            "\n[{}] enforcements: {}, permit-obligation log lines: {}",
            d.name,
            d.pep.audit_log().len(),
            d.log_handler.entries().len()
        );
    }
}
