//! Hedged quorum decisions: serve a replicated PDP shard through the
//! parallel fan-out pool and watch tail-latency hedging route around a
//! slow replica — the first answer wins, the straggler is cancelled.
//!
//! Run with: `cargo run --release --example hedged_quorum`

use dacs::cluster::{
    ClusterBuilder, DecisionBackend, HedgeConfig, QuorumMode, SchedulerConfig, StaticBackend,
};
use dacs::policy::eval::Response;
use dacs::policy::policy::Decision;
use dacs::policy::request::RequestContext;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A replica that answers correctly but slowly — an overloaded or
/// far-away PDP whose tail the hedge must hide.
struct SlowReplica {
    name: String,
    delay: Duration,
}

impl DecisionBackend for SlowReplica {
    fn name(&self) -> &str {
        &self.name
    }
    fn decide(&self, _request: &RequestContext, _now_ms: u64) -> Response {
        std::thread::sleep(self.delay);
        Response::decision(Decision::Permit)
    }
}

fn main() {
    // One shard, three replicas. The slow one sits first in configured
    // order, so the first-healthy path would normally pay its 5 ms on
    // every single decision.
    let build = |hedged: bool| {
        let replicas: Vec<Arc<dyn DecisionBackend>> = vec![
            Arc::new(SlowReplica {
                name: "pdp-far".into(),
                delay: Duration::from_millis(5),
            }),
            Arc::new(StaticBackend::new("pdp-near-0", Decision::Permit)),
            Arc::new(StaticBackend::new("pdp-near-1", Decision::Permit)),
        ];
        let mut config = SchedulerConfig::new(4);
        if hedged {
            config = config.with_hedge(HedgeConfig {
                budget_multiplier: 3.0,
                min_budget_us: 300,
                max_hedges: 1,
            });
        }
        ClusterBuilder::new("clinic-pdp")
            .quorum(QuorumMode::FirstHealthy)
            .scheduler(config)
            .shard(replicas)
            .build()
    };

    for (label, hedged) in [("unhedged first-healthy", false), ("hedged", true)] {
        let cluster = build(hedged);
        let mut latencies_us: Vec<u64> = Vec::new();
        for i in 0..50u64 {
            let request =
                RequestContext::basic(format!("dr-{}", i % 7), format!("records/{i}"), "read");
            let started = Instant::now();
            let outcome = cluster.decide(&request, i);
            latencies_us.push(started.elapsed().as_micros() as u64);
            assert_eq!(
                outcome.response.expect("replicas healthy").decision,
                Decision::Permit
            );
        }
        latencies_us.sort_unstable();
        let metrics = cluster.metrics();
        println!(
            "{label:>22}: p50 {:>6} µs   max {:>6} µs   hedges {:>2} (won {})",
            latencies_us[latencies_us.len() / 2],
            latencies_us[latencies_us.len() - 1],
            metrics.hedges,
            metrics.hedge_wins,
        );
    }

    println!();
    println!("The hedged run answers from a near replica a few hundred µs after");
    println!("the far primary overruns its budget; the unhedged run pays the");
    println!("primary's full 5 ms on every decision.");
}
