//! Policy administration across a multi-domain environment: the PAP's
//! own administrative policy (the authorization system protecting
//! itself, §3.2), versioning and rollback, cross-domain delegation with
//! cascading revocation, and the Fig. 5 syndication hierarchy.
//!
//! Run with: `cargo run --example policy_administration`

use dacs::pap::{DelegationRegistry, Pap, SyndicationTree};
use dacs::policy::dsl::parse_policy;
use dacs::policy::policy::{CombiningAlg, Effect, Policy, PolicyId, Rule};

fn main() {
    // --- The PAP guarded by its own policy language -------------------
    let pap = Pap::new("pap.hospital-a");
    pap.set_admin_policy(
        parse_policy(
            r#"
policy "who-administers" deny-unless-permit {
  rule "security-team-everything" permit {
    target { subject "id" ~= "sec-*"; }
  }
  rule "radiology-leads-own-namespace" permit {
    target {
      subject "id" ~= "radiology-lead-*";
      resource "id" ~= "radiology-*";
    }
  }
}
"#,
        )
        .unwrap(),
    );

    let sample = |id: &str| {
        Policy::new(PolicyId::new(id), CombiningAlg::DenyUnlessPermit)
            .with_rule(Rule::new("ok", Effect::Permit))
    };

    println!(
        "sec-alice installs radiology-read v1: {:?}",
        pap.submit("sec-alice", sample("radiology-read"), 10)
            .map(|v| format!("v{v}"))
    );
    println!(
        "radiology-lead-bob updates it to v2:  {:?}",
        pap.submit("radiology-lead-bob", sample("radiology-read"), 20)
            .map(|v| format!("v{v}"))
    );
    println!(
        "radiology-lead-bob touches cardiology: {:?}",
        pap.submit("radiology-lead-bob", sample("cardiology-read"), 30)
            .err()
            .map(|e| e.to_string())
    );
    pap.rollback("sec-alice", &PolicyId::new("radiology-read"), 1, 40)
        .unwrap();
    println!(
        "rolled back to v{}",
        pap.active(&PolicyId::new("radiology-read"))
            .unwrap()
            .version
    );
    println!("audit log:");
    for e in pap.audit_log() {
        println!(
            "  #{} t={} {} {} {} -> v{}",
            e.seq, e.at_ms, e.actor, e.action, e.policy, e.version
        );
    }

    // --- Delegation with depth limits and cascading revocation --------
    let mut reg = DelegationRegistry::new();
    reg.add_root("vo-authority");
    let g1 = reg
        .grant("vo-authority", "hospital-a", "ehr/*", 2, 1_000_000, 0)
        .unwrap();
    let _g2 = reg
        .grant(
            "hospital-a",
            "radiology-dept",
            "ehr/radiology/*",
            1,
            900_000,
            0,
        )
        .unwrap();
    let _g3 = reg
        .grant(
            "radiology-dept",
            "night-shift",
            "ehr/radiology/night/*",
            0,
            800_000,
            0,
        )
        .unwrap();
    println!(
        "\nnight-shift may administer ehr/radiology/night/p1: chain length {:?}",
        reg.validate("night-shift", "ehr/radiology/night/p1", 100)
    );
    let revoked = reg.revoke(g1).unwrap();
    println!("revoking the top grant cascades over {revoked} grants");
    println!(
        "night-shift after revocation: {:?}",
        reg.validate("night-shift", "ehr/radiology/night/p1", 100)
    );

    // --- Fig. 5: syndication hierarchy ---------------------------------
    let mut tree = SyndicationTree::new("pap.global");
    let eu = tree.add_child(0, "pap.eu", None);
    let us = tree.add_child(0, "pap.us", None);
    let _hospital = tree.add_child(eu, "pap.hospital-a", Some("ehr-*".into()));
    let _lab = tree.add_child(us, "pap.lab-b", Some("lab-*".into()));
    let report = tree.propagate(sample("ehr-baseline"), 100);
    println!(
        "\nsyndicating ehr-baseline: {} pushes, {} reports, applied at {} nodes, filtered at {}",
        report.hops.len(),
        report.reports,
        report.applied,
        report.filtered,
    );
    println!(
        "tree converged: {}",
        tree.converged(&PolicyId::new("ehr-baseline"))
    );
}
