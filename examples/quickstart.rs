//! Quickstart: write a policy in the DSL, stand up a PAP → PDP → PEP
//! stack for one domain, and enforce a few requests.
//!
//! Run with: `cargo run --example quickstart`

use dacs::crypto::sign::CryptoCtx;
use dacs::pap::Pap;
use dacs::pdp::Pdp;
use dacs::pep::{EnforceRequest, LogObligationHandler, Pep};
use dacs::pip::{EnvironmentProvider, PipRegistry, StaticAttributes};
use dacs::policy::dsl::parse_policy;
use dacs::policy::policy::{PolicyElement, PolicyId};
use dacs::policy::request::RequestContext;
use std::sync::Arc;

fn main() {
    // 1. A policy in the textual DSL (XACML semantics: target, rules,
    //    combining algorithm, obligations).
    let policy = parse_policy(
        r#"
policy "clinic-gate" first-applicable {
  target {
    resource "id" ~= "records/*";
  }
  rule "doctors-in-hours" permit {
    target { action "id" == "read"; }
    condition and(
      is-in("doctor", attr(subject, "role")),
      lt(hour-of(attr!(env, "current-time")), 17)
    )
    obligation "log" on permit {
      "who" = attr(subject, "id");
    }
  }
  rule "default-deny" deny { }
}
"#,
    )
    .expect("policy parses");

    // 2. PAP: the policy repository (versioned, audited).
    let pap = Arc::new(Pap::new("pap.clinic"));
    pap.submit("admin", policy, 0).expect("no admin policy yet");

    // 3. PIPs: where subject/environment attributes come from.
    let statics = Arc::new(StaticAttributes::new());
    statics.add_subject_attr("alice", "role", "doctor");
    let mut pips = PipRegistry::new();
    pips.add(statics);
    pips.add(Arc::new(EnvironmentProvider));

    // 4. PDP evaluates; 5. PEP enforces with fail-safe defaults.
    let pdp = Arc::new(Pdp::new(
        "pdp.clinic",
        pap,
        PolicyElement::PolicyRef(PolicyId::new("clinic-gate")),
        Arc::new(pips),
    ));
    let log = Arc::new(LogObligationHandler::new());
    let pep = Pep::builder("pep.clinic")
        .audience("clinic")
        .source(pdp)
        .crypto(CryptoCtx::new())
        .handler(log.clone())
        .build();

    let nine_am = 9 * 3_600_000;
    let ten_pm = 22 * 3_600_000;
    for (subject, resource, action, at) in [
        ("alice", "records/42", "read", nine_am),
        ("alice", "records/42", "read", ten_pm), // after hours
        ("mallory", "records/42", "read", nine_am), // no doctor role
        ("alice", "billing/1", "read", nine_am), // outside target → fail-safe deny
    ] {
        let request = RequestContext::basic(subject, resource, action);
        let result = pep.serve(EnforceRequest::of(&request, at));
        println!(
            "{subject:>8} {action} {resource:<12} at {:>2}h -> {:<6} ({})",
            at / 3_600_000,
            if result.allowed { "ALLOW" } else { "DENY" },
            result.reason.unwrap_or_else(|| "policy permit".into()),
        );
    }

    println!("\naudit log entries: {:?}", log.entries());
}
