//! Replica re-sync from the PAP syndication tree: crash two of three
//! PDP replicas across a lockdown policy update and watch what their
//! recovery does to the quorum — stale votes outvoting the fresh
//! replica with re-sync off, an epoch-gated `Syncing` phase with zero
//! wrong decisions with it on.
//!
//! Run with: `cargo run --release --example replica_resync`

use dacs::cluster::{ClusterBuilder, DecisionBackend, QuorumMode};
use dacs::pap::SyndicationTree;
use dacs::pdp::{CacheConfig, Pdp};
use dacs::pip::PipRegistry;
use dacs::policy::dsl::parse_policy;
use dacs::policy::policy::{Decision, Policy, PolicyElement, PolicyId};
use dacs::policy::request::RequestContext;
use std::sync::Arc;

fn gate(lockdown: bool) -> Policy {
    let role = if lockdown { "admin" } else { "doctor" };
    parse_policy(&format!(
        r#"policy "gate" deny-unless-permit {{
             rule "r" permit {{ condition is-in("{role}", attr(subject, "role")) }} }}"#
    ))
    .expect("gate parses")
}

fn main() {
    for resync in [false, true] {
        println!(
            "=== re-sync {} ===",
            if resync {
                "ON (epoch-gated recovery)"
            } else {
                "OFF (rejoin as-is)"
            }
        );

        // A global PAP syndicates to three leaves, each the local PAP
        // of one PDP replica in a majority-quorum shard.
        let mut tree = SyndicationTree::new("pap.global");
        let statics = Arc::new(dacs::pip::StaticAttributes::new());
        statics.add_subject_attr("dr-grey", "role", "doctor");
        let mut pips = PipRegistry::new();
        pips.add(statics);
        let pips = Arc::new(pips);
        let root = PolicyElement::PolicyRef(PolicyId::new("gate"));

        let mut leaves = Vec::new();
        let mut replicas: Vec<Arc<dyn DecisionBackend>> = Vec::new();
        for r in 0..3 {
            let name = format!("pdp-{r}");
            let leaf = tree.add_child(0, name.clone(), None);
            replicas.push(Arc::new(
                Pdp::new(
                    name,
                    tree.node(leaf).pap.clone(),
                    root.clone(),
                    pips.clone(),
                )
                .with_cache(CacheConfig {
                    capacity: 128,
                    ttl_ms: 1_000,
                }),
            ));
            leaves.push(leaf);
        }
        tree.propagate(gate(false), 0); // epoch 1: doctors may read

        let cluster = ClusterBuilder::new("ward-pdp")
            .quorum(QuorumMode::Majority)
            .resync(resync)
            .shard(replicas)
            .build();
        let request = RequestContext::basic("dr-grey", "records/icu-7", "read");
        let phase = |name: &str| cluster.replica_phase(name).unwrap().name().to_owned();

        // pdp-1 and pdp-2 crash; the lockdown lands while they sleep.
        for r in [1usize, 2] {
            cluster.mark_down(&format!("pdp-{r}"));
            tree.set_online(leaves[r], false);
        }
        let report = tree.propagate(gate(true), 10); // epoch 2: lockdown
        println!(
            "lockdown pushed at {} — {} nodes offline missed it",
            report.epoch, report.offline_skipped
        );

        // They recover, stale at epoch 1.
        for r in [1usize, 2] {
            tree.set_online(leaves[r], true);
            cluster.mark_up(&format!("pdp-{r}"));
        }
        println!(
            "after recovery: pdp-0 {}, pdp-1 {}, pdp-2 {}",
            phase("pdp-0"),
            phase("pdp-1"),
            phase("pdp-2")
        );
        let decision = cluster.decide(&request, 20).response.unwrap().decision;
        println!(
            "dr-grey under lockdown → {decision} ({})",
            match decision {
                Decision::Permit => "WRONG: the stale pair outvoted the fresh replica",
                _ => "correct: stale votes were never counted",
            }
        );

        // Anti-entropy: replay the missed updates, then readmit.
        for r in [1usize, 2] {
            let caught = tree.catch_up(leaves[r], 30);
            let ok = cluster.complete_resync(&format!("pdp-{r}"));
            println!(
                "pdp-{r} caught up {} → {} ({} replayed), readmitted: {ok}",
                caught.from_epoch, caught.to_epoch, caught.replayed
            );
        }
        let decision = cluster.decide(&request, 40).response.unwrap().decision;
        println!("after catch-up, full quorum of 3 → {decision}");
        let m = cluster.metrics();
        println!(
            "metrics: resyncs {}, stale votes avoided {}, peak epoch lag {}\n",
            m.resyncs, m.stale_decisions_avoided, m.epoch_lag_max
        );
    }

    println!("The OFF run serves a stale permit the instant the crashed pair");
    println!("returns; the ON run holds them in Syncing until the syndication");
    println!("tree has replayed the lockdown into their local PAPs.");
}
