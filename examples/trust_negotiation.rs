//! Automated trust negotiation (§3.1): two strangers — a researcher and
//! a data provider — incrementally establish trust by exchanging
//! credentials guarded by release policies, comparing the eager and
//! parsimonious strategies.
//!
//! Run with: `cargo run --example trust_negotiation`

use dacs::trust::{negotiate, Credential, Party, ReleasePolicy, Strategy};

fn main() {
    // The provider requires a research-ethics certificate before
    // releasing genome data. The researcher will only show that
    // certificate to an accredited data provider; accreditation in turn
    // is only shown to identified institutions.
    let researcher = Party::new(
        "researcher",
        vec![
            Credential::public("institution-id"),
            Credential::guarded(
                "ethics-cert",
                2,
                ReleasePolicy::RequiresAll(vec!["provider-accreditation".into()]),
            ),
            Credential::public("conference-badge"), // irrelevant noise
        ],
    );
    let provider = Party::new(
        "provider",
        vec![
            Credential::guarded(
                "provider-accreditation",
                1,
                ReleasePolicy::RequiresAll(vec!["institution-id".into()]),
            ),
            Credential::public("marketing-brochure"), // irrelevant noise
        ],
    );
    let resource_policy = ReleasePolicy::RequiresAll(vec!["ethics-cert".into()]);

    for (strategy, name) in [
        (Strategy::Eager, "eager"),
        (Strategy::Parsimonious, "parsimonious"),
    ] {
        let out = negotiate(&researcher, &provider, &resource_policy, strategy, 20);
        println!("--- {name} strategy ---");
        println!(
            "success: {} in {} rounds ({} messages)",
            out.success, out.rounds, out.messages
        );
        for d in &out.transcript {
            println!(
                "  round {}: {} disclosed {}",
                d.round,
                if d.by_client {
                    "researcher"
                } else {
                    "provider"
                },
                d.credential
            );
        }
        println!();
    }
}
