//! CI bench-trajectory gate: compares a fresh `bench.json` (written by
//! `harness -- all --json bench.json`) against the committed
//! `BENCH_baseline.json` and fails on either of:
//!
//! * a >25% p99 regression in the E15 fan-out latency rows,
//! * a >2-point availability drop in the E17 federated-cluster rows
//!   (the clustered VO must keep answering through churn),
//! * a >25% decisions/sec drop in the E18 capability-ceiling rows
//!   (the signed-token fast path must keep its throughput edge), or
//! * a >25% interactive-p99 regression or decisions/sec drop in the
//!   E19 scheduler-saturation rows (the priority lanes must keep the
//!   interactive tail flat under the bulk flood, at full throughput),
//!   or
//! * a >25% decisions/sec drop or a >0.5 scaling-ratio drop in the E20
//!   read-path-scaling rows (the striped PEP cache must keep both its
//!   absolute throughput and its multi-thread scaling shape).
//!
//! ```text
//! cargo run --release -p dacs-bench --bin bench_gate -- BENCH_baseline.json bench.json
//! ```
//!
//! Both gates are noise-floored. The E15 percentage gate only applies
//! above 300 µs: the parallel/hedged rows sit in the tens-of-µs range
//! where scheduler jitter on shared CI runners dwarfs any real change,
//! while the sequential row (which pays the injected 2 ms-slow replica
//! and is the one a fan-out regression would move) sits far above it.
//! The E17 availability gate ignores dips within 2 points — workload
//! rounding at reduced `DACS_BENCH_SCALE` moves a blackout window by a
//! request or two — while a real availability regression (a shard that
//! stops answering) drops tens of points. The E18 throughput gate
//! skips rows whose baseline sits at or below 1000 decisions/sec:
//! rates that small are fixed-cost territory at smoke scale, where the
//! percentage would measure the runner, not the fast path. On top of
//! that floor, the committed baseline's E18 decisions/sec cells are
//! themselves noise-floored: when refreshing `BENCH_baseline.json`,
//! run `harness -- e18 --json` a handful of extra times and keep the
//! per-row minimum, so the -25% bar sits below the slow edge of the
//! runner's noise envelope and only a structural regression (the token
//! path losing its cache and collapsing toward quorum rates) trips it.

use dacs_bench::{availability_drops, parse_json_rows, regressions, throughput_drops, BenchRow};

/// The latency gate: experiment, metric, threshold and noise floor.
const LAT_EXPERIMENT: &str = "e15";
const LAT_METRIC: &str = "lat p99 (µs)";
/// Fail beyond baseline + 25%.
const LAT_THRESHOLD: f64 = 0.25;
/// Ignore percentage movement below this magnitude (µs).
const LAT_FLOOR_US: f64 = 300.0;

/// The availability gate: experiment, metric and allowed drop.
const AVAIL_EXPERIMENT: &str = "e17";
const AVAIL_METRIC: &str = "availability %";
/// Fail when a row falls more than this many points below baseline.
const AVAIL_MAX_DROP: f64 = 2.0;

/// The throughput gate: experiment, metric, threshold and noise floor.
const TPUT_EXPERIMENT: &str = "e18";
const TPUT_METRIC: &str = "decisions/sec";
/// Fail below baseline - 25%.
const TPUT_THRESHOLD: f64 = 0.25;
/// Skip rows whose baseline rate is at or below this magnitude.
const TPUT_FLOOR_DPS: f64 = 1000.0;

/// The scheduler gate: the E19 saturation rows, latency and
/// throughput, sharing the E15/E18 thresholds and noise floors. The
/// interactive p99s sit far below the 300 µs floor on a healthy
/// scheduler — this gate exists to catch the structural failure (lanes
/// stop isolating and the flood lands on the interactive tail), which
/// blows straight through it.
const SCHED_EXPERIMENT: &str = "e19";
const SCHED_LAT_METRIC: &str = "interactive p99 (µs)";

/// The read-path gate: the E20 scaling rows. Decisions/sec shares the
/// E18 throughput threshold and noise floor. The scaling ratio
/// (`threads=N` throughput over `threads=1`, a number near 1 on a
/// single-core runner and near N on real cores) rides the
/// absolute-drop helper instead of the percentage one — the 1000-dps
/// floor built into `throughput_drops` would skip every ratio row —
/// with a 0.5 allowance: run-to-run jitter on a shared runner moves
/// the ratio by tenths, while the structural failure this gate exists
/// for (a reintroduced global lock serializing the stripes) halves it
/// or worse.
const READ_EXPERIMENT: &str = "e20";
const READ_SCALING_METRIC: &str = "scaling x1";
const READ_SCALING_MAX_DROP: f64 = 0.5;

fn load(path: &str) -> Vec<BenchRow> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_json_rows(&text),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn require_rows(rows: &[BenchRow], path: &str, experiment: &str, metric: &str) {
    if !rows
        .iter()
        .any(|r| r.experiment == experiment && r.metric == metric)
    {
        eprintln!("bench_gate: {path} has no '{experiment}' '{metric}' rows");
        std::process::exit(2);
    }
}

fn print_rows(
    baseline: &[BenchRow],
    fresh: &[BenchRow],
    experiment: &str,
    metric: &str,
    unit: &str,
) {
    for base in baseline
        .iter()
        .filter(|r| r.experiment == experiment && r.metric == metric)
    {
        let current = fresh
            .iter()
            .find(|r| r.experiment == experiment && r.metric == metric && r.key == base.key)
            .and_then(|r| r.value);
        // Per-metric delta (absolute and percent vs baseline), so a
        // run's drift is readable straight from the CI log without
        // diffing the two JSON files by hand.
        let delta = match (base.value, current) {
            (Some(b), Some(f)) => {
                let d = f - b;
                if b.abs() > f64::EPSILON {
                    format!("   Δ {d:+.1} {unit} ({:+.1}%)", d / b * 100.0)
                } else {
                    format!("   Δ {d:+.1} {unit}")
                }
            }
            _ => String::new(),
        };
        println!(
            "  {:<16} baseline {:>10}   fresh {:>10}{delta}",
            base.key,
            base.value
                .map(|v| format!("{v:.1} {unit}"))
                .unwrap_or("—".into()),
            current
                .map(|v| format!("{v:.1} {unit}"))
                .unwrap_or("MISSING".into()),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_gate <BENCH_baseline.json> <fresh bench.json>");
        std::process::exit(2);
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    require_rows(&baseline, baseline_path, LAT_EXPERIMENT, LAT_METRIC);
    require_rows(&baseline, baseline_path, AVAIL_EXPERIMENT, AVAIL_METRIC);
    require_rows(&baseline, baseline_path, TPUT_EXPERIMENT, TPUT_METRIC);
    require_rows(&baseline, baseline_path, SCHED_EXPERIMENT, SCHED_LAT_METRIC);
    require_rows(&baseline, baseline_path, SCHED_EXPERIMENT, TPUT_METRIC);
    require_rows(&baseline, baseline_path, READ_EXPERIMENT, TPUT_METRIC);
    require_rows(
        &baseline,
        baseline_path,
        READ_EXPERIMENT,
        READ_SCALING_METRIC,
    );

    println!(
        "bench_gate: {LAT_EXPERIMENT} '{LAT_METRIC}' vs {baseline_path} \
         (+{:.0}% over max(baseline, {LAT_FLOOR_US} µs) allowed)",
        LAT_THRESHOLD * 100.0
    );
    print_rows(&baseline, &fresh, LAT_EXPERIMENT, LAT_METRIC, "µs");
    println!(
        "bench_gate: {AVAIL_EXPERIMENT} '{AVAIL_METRIC}' vs {baseline_path} \
         (-{AVAIL_MAX_DROP:.1} points allowed)"
    );
    print_rows(&baseline, &fresh, AVAIL_EXPERIMENT, AVAIL_METRIC, "%");
    println!(
        "bench_gate: {TPUT_EXPERIMENT} '{TPUT_METRIC}' vs {baseline_path} \
         (-{:.0}% allowed above {TPUT_FLOOR_DPS:.0} dps)",
        TPUT_THRESHOLD * 100.0
    );
    print_rows(&baseline, &fresh, TPUT_EXPERIMENT, TPUT_METRIC, "dps");
    println!(
        "bench_gate: {SCHED_EXPERIMENT} '{SCHED_LAT_METRIC}' vs {baseline_path} \
         (+{:.0}% over max(baseline, {LAT_FLOOR_US} µs) allowed)",
        LAT_THRESHOLD * 100.0
    );
    print_rows(&baseline, &fresh, SCHED_EXPERIMENT, SCHED_LAT_METRIC, "µs");
    println!(
        "bench_gate: {SCHED_EXPERIMENT} '{TPUT_METRIC}' vs {baseline_path} \
         (-{:.0}% allowed above {TPUT_FLOOR_DPS:.0} dps)",
        TPUT_THRESHOLD * 100.0
    );
    print_rows(&baseline, &fresh, SCHED_EXPERIMENT, TPUT_METRIC, "dps");
    println!(
        "bench_gate: {READ_EXPERIMENT} '{TPUT_METRIC}' vs {baseline_path} \
         (-{:.0}% allowed above {TPUT_FLOOR_DPS:.0} dps)",
        TPUT_THRESHOLD * 100.0
    );
    print_rows(&baseline, &fresh, READ_EXPERIMENT, TPUT_METRIC, "dps");
    println!(
        "bench_gate: {READ_EXPERIMENT} '{READ_SCALING_METRIC}' vs {baseline_path} \
         (-{READ_SCALING_MAX_DROP:.1} allowed)"
    );
    print_rows(&baseline, &fresh, READ_EXPERIMENT, READ_SCALING_METRIC, "x");

    let mut bad = regressions(
        &baseline,
        &fresh,
        LAT_EXPERIMENT,
        LAT_METRIC,
        LAT_THRESHOLD,
        LAT_FLOOR_US,
    );
    bad.extend(availability_drops(
        &baseline,
        &fresh,
        AVAIL_EXPERIMENT,
        AVAIL_METRIC,
        AVAIL_MAX_DROP,
    ));
    bad.extend(throughput_drops(
        &baseline,
        &fresh,
        TPUT_EXPERIMENT,
        TPUT_METRIC,
        TPUT_THRESHOLD,
        TPUT_FLOOR_DPS,
    ));
    bad.extend(regressions(
        &baseline,
        &fresh,
        SCHED_EXPERIMENT,
        SCHED_LAT_METRIC,
        LAT_THRESHOLD,
        LAT_FLOOR_US,
    ));
    bad.extend(throughput_drops(
        &baseline,
        &fresh,
        SCHED_EXPERIMENT,
        TPUT_METRIC,
        TPUT_THRESHOLD,
        TPUT_FLOOR_DPS,
    ));
    bad.extend(throughput_drops(
        &baseline,
        &fresh,
        READ_EXPERIMENT,
        TPUT_METRIC,
        TPUT_THRESHOLD,
        TPUT_FLOOR_DPS,
    ));
    bad.extend(availability_drops(
        &baseline,
        &fresh,
        READ_EXPERIMENT,
        READ_SCALING_METRIC,
        READ_SCALING_MAX_DROP,
    ));
    if bad.is_empty() {
        println!("bench_gate: PASS");
    } else {
        for line in &bad {
            eprintln!("bench_gate: REGRESSION {line}");
        }
        std::process::exit(1);
    }
}
