//! CI bench-trajectory gate: compares a fresh `bench.json` (written by
//! `harness -- all --json bench.json`) against the committed
//! `BENCH_baseline.json` and fails on a >25% p99 regression in the E15
//! fan-out latency rows.
//!
//! ```text
//! cargo run --release -p dacs-bench --bin bench_gate -- BENCH_baseline.json bench.json
//! ```
//!
//! The percentage gate only applies above a 300 µs noise floor:
//! the E15 parallel/hedged rows sit in the tens-of-µs range where
//! scheduler jitter on shared CI runners dwarfs any real change, while
//! the sequential row (which pays the injected 2 ms-slow replica and is
//! the one a fan-out regression would move) sits far above it.

use dacs_bench::{parse_json_rows, regressions, BenchRow};

/// The experiment/metric the gate watches.
const EXPERIMENT: &str = "e15";
const METRIC: &str = "lat p99 (µs)";
/// Fail beyond baseline + 25%.
const THRESHOLD: f64 = 0.25;
/// Ignore percentage movement below this magnitude (µs).
const FLOOR_US: f64 = 300.0;

fn load(path: &str) -> Vec<BenchRow> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse_json_rows(&text),
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_gate <BENCH_baseline.json> <fresh bench.json>");
        std::process::exit(2);
    };
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    if !baseline
        .iter()
        .any(|r| r.experiment == EXPERIMENT && r.metric == METRIC)
    {
        eprintln!("bench_gate: {baseline_path} has no '{EXPERIMENT}' '{METRIC}' rows");
        std::process::exit(2);
    }

    println!("bench_gate: {EXPERIMENT} '{METRIC}' vs {baseline_path} (+{:.0}% over max(baseline, {FLOOR_US} µs) allowed)",
        THRESHOLD * 100.0);
    for base in baseline
        .iter()
        .filter(|r| r.experiment == EXPERIMENT && r.metric == METRIC)
    {
        let current = fresh
            .iter()
            .find(|r| r.experiment == EXPERIMENT && r.metric == METRIC && r.key == base.key)
            .and_then(|r| r.value);
        println!(
            "  {:<12} baseline {:>10} µs   fresh {:>10}",
            base.key,
            base.value.map(|v| format!("{v:.1}")).unwrap_or("—".into()),
            current
                .map(|v| format!("{v:.1} µs"))
                .unwrap_or("MISSING".into()),
        );
    }

    let bad = regressions(&baseline, &fresh, EXPERIMENT, METRIC, THRESHOLD, FLOOR_US);
    if bad.is_empty() {
        println!("bench_gate: PASS");
    } else {
        for line in &bad {
            eprintln!("bench_gate: REGRESSION {line}");
        }
        std::process::exit(1);
    }
}
