//! # dacs — Dependable Access Control for Multi-Domain Computing Environments
//!
//! A full reproduction, as a Rust workspace, of the system architected in
//! *Architecting Dependable Access Control Systems for Multi-Domain
//! Computing Environments* (Machulak, Parkin, van Moorsel, DSN 2008).
//!
//! This facade crate re-exports every layer:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`policy`] | `dacs-policy` | XACML-like language, evaluation engine, combining algorithms, conflict analysis, DSL |
//! | [`crypto`] | `dacs-crypto` | SHA-256, HMAC, ChaCha20, hash-based signatures, certificates |
//! | [`wire`] | `dacs-wire` | compact + XML-ish codecs, envelopes, message security |
//! | [`simnet`] | `dacs-simnet` | deterministic event-driven network simulator |
//! | [`rbac`] | `dacs-rbac` | RBAC96 with hierarchies, sessions, SSD/DSD |
//! | [`mod@assert`] | `dacs-assert` | SAML-like assertions, capabilities, attribute certificates |
//! | [`capability`] | `dacs-capability` | signed capability fast path: HMAC tokens minted on permit, verified locally, revoked by policy epoch |
//! | [`pip`] | `dacs-pip` | attribute providers and resolution |
//! | [`pap`] | `dacs-pap` | versioned repository, admin policies, delegation, epoch-stamped syndication with catch-up |
//! | [`pdp`] | `dacs-pdp` | decision engine, caching, discovery, policy-epoch exposure |
//! | [`pep`] | `dacs-pep` | agent/push/pull enforcement, obligations |
//! | [`trust`] | `dacs-trust` | automated trust negotiation |
//! | [`federation`] | `dacs-federation` | domains (single-engine or cluster-backed), VOs, capability services, measured flows |
//! | [`cluster`] | `dacs-cluster` | sharded, replicated PDP cluster: consistent-hash routing, quorum decisions, epoch-gated replica re-sync, failover, batching |
//! | [`telemetry`] | `dacs-telemetry` | metric registry (counters/gauges/histograms), decision-path tracing, Prometheus-style exposition |
//! | [`core`] | `dacs-core` | scenarios, workloads, the experiment suite |
//!
//! # Quickstart
//!
//! ```
//! use dacs::policy::dsl::parse_policy;
//! use dacs::policy::eval::{EmptyStore, Evaluator};
//! use dacs::policy::policy::Decision;
//! use dacs::policy::request::RequestContext;
//!
//! let policy = parse_policy(r#"
//! policy "hello" deny-unless-permit {
//!   rule "readers" permit {
//!     target { action "id" == "read"; }
//!   }
//! }
//! "#)?;
//! let request = RequestContext::basic("alice", "doc/1", "read");
//! let store = EmptyStore;
//! let mut ev = Evaluator::new(&store, &request);
//! assert_eq!(ev.evaluate_policy(&policy).decision, Decision::Permit);
//! # Ok::<(), dacs::policy::dsl::ParseError>(())
//! ```

#![forbid(unsafe_code)]

pub use dacs_assert as assert;
pub use dacs_capability as capability;
pub use dacs_cluster as cluster;
pub use dacs_core as core;
pub use dacs_crypto as crypto;
pub use dacs_federation as federation;
pub use dacs_pap as pap;
pub use dacs_pdp as pdp;
pub use dacs_pep as pep;
pub use dacs_pip as pip;
pub use dacs_policy as policy;
pub use dacs_rbac as rbac;
pub use dacs_simnet as simnet;
pub use dacs_telemetry as telemetry;
pub use dacs_trust as trust;
pub use dacs_wire as wire;
