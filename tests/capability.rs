//! Adversarial and revocation tests for the signed capability fast
//! path: wire-level tampering, forged/truncated MACs, wrong keys,
//! expired leases, stale epochs and field-substitution attacks must
//! all reject; epoch bumps riding the syndication tree must kill
//! outstanding tokens in the same tick across a clustered VO; and a
//! recovering `Syncing` replica must never feed the mint. A proptest
//! property pins the safety direction: the token path may deny where
//! the cluster permits, never the reverse.

use dacs::capability::tamper;
use dacs::capability::{CapabilityKey, CapabilityToken, TokenError, MAC_LEN};
use dacs::cluster::{ClusterBuilder, QuorumMode, ReplicaPhase};
use dacs::core::scenario::alternating_lockdown_gate;
use dacs::crypto::sign::CryptoCtx;
use dacs::federation::{Domain, Vo};
use dacs::pap::PolicyEpoch;
use dacs::pep::EnforceRequest;
use dacs::policy::policy::Decision;
use dacs::policy::request::RequestContext;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture() -> (CapabilityKey, CapabilityToken) {
    let key = CapabilityKey::generate(&mut StdRng::seed_from_u64(7));
    let token = CapabilityToken::mint(
        &key,
        "alice@a",
        "records/1",
        "read",
        1000,
        500,
        PolicyEpoch(3),
    );
    (key, token)
}

/// Verifies the fixture token exactly as minted.
fn verify_as_minted(key: &CapabilityKey, token: &CapabilityToken) -> Result<(), TokenError> {
    token.verify(key, "alice@a", "records/1", "read", 1100, PolicyEpoch(3))
}

/// Every single-bit flip anywhere on the wire — payload or MAC — must
/// leave a token that either fails to decode or fails to verify. No
/// bit position may yield a different-but-valid token.
#[test]
fn every_wire_bit_flip_rejects() {
    let (key, token) = fixture();
    assert_eq!(verify_as_minted(&key, &token), Ok(()));
    let wire = token.to_bytes();
    for bit in 0..wire.len() * 8 {
        let mut flipped = wire.clone();
        tamper::flip_bit(&mut flipped, bit);
        if let Ok(decoded) = CapabilityToken::from_bytes(&flipped) {
            assert!(
                verify_as_minted(&key, &decoded).is_err(),
                "bit {bit}: tampered token verified"
            );
        }
    }
}

/// Truncation at every length, and trailing garbage, must fail to
/// decode — partial tokens can never reach verification.
#[test]
fn truncated_and_padded_wire_rejects() {
    let (_, token) = fixture();
    let wire = token.to_bytes();
    for drop in 1..=wire.len() {
        assert!(
            CapabilityToken::from_bytes(&tamper::truncated(&wire, drop)).is_err(),
            "truncating {drop} bytes decoded"
        );
    }
    let mut padded = wire.clone();
    padded.push(0);
    assert!(CapabilityToken::from_bytes(&padded).is_err());
    assert!(CapabilityToken::from_bytes(&[]).is_err());
}

/// Wholesale MAC forgeries and single-bit MAC damage reject, as does
/// a structurally perfect token presented to a verifier holding a
/// different key.
#[test]
fn forged_macs_and_wrong_keys_reject() {
    let (key, token) = fixture();
    for fill in [0x00, 0xFF, 0xAA] {
        assert_eq!(
            verify_as_minted(&key, &tamper::with_forged_mac(&token, fill)),
            Err(TokenError::BadMac)
        );
    }
    for bit in [0, 1, MAC_LEN * 8 / 2, MAC_LEN * 8 - 1] {
        assert_eq!(
            verify_as_minted(&key, &tamper::flip_mac_bit(&token, bit)),
            Err(TokenError::BadMac)
        );
    }
    let other = CapabilityKey::generate(&mut StdRng::seed_from_u64(8));
    assert_eq!(verify_as_minted(&other, &token), Err(TokenError::BadMac));
}

/// The validity window: not-yet-valid before issuance, expired at and
/// after the (exclusive) expiry instant — and an attacker extending
/// their own lease trips the MAC before the window is even checked.
#[test]
fn expiry_is_exclusive_and_unforgeable() {
    let (key, token) = fixture();
    let at = |now: u64| token.verify(&key, "alice@a", "records/1", "read", now, PolicyEpoch(3));
    assert_eq!(at(999), Err(TokenError::NotYetValid));
    assert_eq!(at(1000), Ok(()));
    assert_eq!(at(1499), Ok(()));
    assert_eq!(at(1500), Err(TokenError::Expired));
    assert_eq!(at(u64::MAX), Err(TokenError::Expired));
    assert_eq!(
        verify_as_minted(&key, &tamper::with_expiry(&token, u64::MAX)),
        Err(TokenError::BadMac)
    );
}

/// Epoch binding is strict equality: a token from an older epoch is
/// stale, a token claiming a *newer* epoch than the verifier knows is
/// equally rejected, and restamping the epoch field trips the MAC.
#[test]
fn stale_and_future_epochs_reject() {
    let (key, token) = fixture();
    let at = |epoch: u64| {
        token.verify(
            &key,
            "alice@a",
            "records/1",
            "read",
            1100,
            PolicyEpoch(epoch),
        )
    };
    assert_eq!(at(3), Ok(()));
    assert_eq!(
        at(4),
        Err(TokenError::StaleEpoch {
            token: PolicyEpoch(3),
            current: PolicyEpoch(4),
        })
    );
    assert_eq!(
        at(2),
        Err(TokenError::StaleEpoch {
            token: PolicyEpoch(3),
            current: PolicyEpoch(2),
        })
    );
    assert_eq!(
        verify_as_minted(&key, &tamper::with_epoch(&token, PolicyEpoch(4))),
        Err(TokenError::BadMac)
    );
}

/// Substitution attacks from both sides: presenting a valid token for
/// the wrong subject/resource/action is a binding mismatch, and
/// rewriting the token's own fields to match trips the MAC.
#[test]
fn subject_resource_action_substitution_rejects() {
    let (key, token) = fixture();
    assert_eq!(
        token.verify(&key, "eve@a", "records/1", "read", 1100, PolicyEpoch(3)),
        Err(TokenError::SubjectMismatch)
    );
    assert_eq!(
        token.verify(&key, "alice@a", "records/2", "read", 1100, PolicyEpoch(3)),
        Err(TokenError::ResourceMismatch)
    );
    assert_eq!(
        token.verify(&key, "alice@a", "records/1", "write", 1100, PolicyEpoch(3)),
        Err(TokenError::ActionMismatch)
    );
    assert_eq!(
        verify_as_minted(&key, &tamper::with_subject(&token, "eve@a")),
        Err(TokenError::BadMac)
    );
    assert_eq!(
        verify_as_minted(&key, &tamper::with_resource(&token, "records/2")),
        Err(TokenError::BadMac)
    );
    assert_eq!(
        verify_as_minted(&key, &tamper::with_action(&token, "write")),
        Err(TokenError::BadMac)
    );
}

/// One clustered capability domain for the revocation suites.
fn token_domain(name: &str, seed: u64, ctx: &CryptoCtx) -> Domain {
    let mut builder = Domain::builder(name)
        .policy(alternating_lockdown_gate(name, 0))
        .clustered(
            ClusterBuilder::new(name)
                .quorum(QuorumMode::Majority)
                .resync(true),
        )
        .cluster_topology(1, 3)
        .capability(10_000_000)
        .seed(seed);
    for u in 0..4 {
        builder = builder.subject_attr(&format!("user-{u}@{name}"), "role", "doctor");
    }
    builder.build(ctx)
}

/// An epoch bump riding the syndication tree kills every outstanding
/// token in the *same tick* it lands, across all three domains of a
/// clustered VO, through E17-style replica churn (crash over the
/// push, recover stale into `Syncing`, catch up, repeat). Every
/// enforcement is compared against the domain's reference engine:
/// the clustered-plus-token answer never diverges.
#[test]
fn epoch_bump_revokes_same_tick_across_clustered_vo() {
    let ctx = CryptoCtx::new();
    let domains: Vec<Domain> = (0..3)
        .map(|d| token_domain(&format!("domain-{d}"), 40 + d as u64, &ctx))
        .collect();
    let vo = Vo::new("vo-tokens", ctx.clone(), domains);
    let churn_replicas = vo.domains[0].replica_names();

    for round in 0u64..4 {
        let t0 = round * 100;
        // Warm phase: current gate version is `round` — doctors get in
        // on even rounds, and the second pass rides tokens.
        for _ in 0..2 {
            for d in &vo.domains {
                for u in 0..4 {
                    let req = RequestContext::basic(
                        format!("user-{u}@{}", d.name),
                        format!("records/{u}"),
                        "read",
                    );
                    let truth = d.pdp.decide(&req, t0).decision;
                    let got = d.pep.serve(EnforceRequest::of(&req, t0)).allowed;
                    assert_eq!(got, truth == Decision::Permit, "{} warm r{round}", d.name);
                }
            }
        }
        if round.is_multiple_of(2) {
            let hits = vo.domains[0].pep.stats().token_hits;
            assert!(hits > 0, "round {round}: permit rounds must ride tokens");
        }

        // E17 churn shape: domain-0's replica crashes over the push…
        vo.domains[0].crash_replica(&churn_replicas[1]);

        // …which lands at t0+50 in every domain and must revoke every
        // outstanding token at that same tick.
        let t_push = t0 + 50;
        let stale_before: u64 = vo
            .domains
            .iter()
            .map(|d| d.capability.as_ref().unwrap().stats().rejected_stale_epoch)
            .sum();
        for d in &vo.domains {
            d.propagate_policy(alternating_lockdown_gate(&d.name, round + 1), t_push);
        }
        for d in &vo.domains {
            for u in 0..4 {
                let req = RequestContext::basic(
                    format!("user-{u}@{}", d.name),
                    format!("records/{u}"),
                    "read",
                );
                let truth = d.pdp.decide(&req, t_push).decision;
                let got = d.pep.serve(EnforceRequest::of(&req, t_push)).allowed;
                assert_eq!(got, truth == Decision::Permit, "{} push r{round}", d.name);
            }
        }
        if round.is_multiple_of(2) {
            let stale_after: u64 = vo
                .domains
                .iter()
                .map(|d| d.capability.as_ref().unwrap().stats().rejected_stale_epoch)
                .sum();
            assert!(
                stale_after > stale_before,
                "round {round}: the push must catch live tokens stale, same tick"
            );
        }

        // The crashed replica recovers stale (held in `Syncing` by the
        // epoch gate) and catches up before the next round.
        vo.domains[0].recover_replica(&churn_replicas[1]);
        for u in 0..4 {
            let req =
                RequestContext::basic(format!("user-{u}@domain-0"), format!("records/{u}"), "read");
            let truth = vo.domains[0].pdp.decide(&req, t0 + 70).decision;
            let got = vo.domains[0]
                .pep
                .serve(EnforceRequest::of(&req, t0 + 70))
                .allowed;
            assert_eq!(got, truth == Decision::Permit, "syncing r{round}");
        }
        vo.domains[0].catch_up_replica(&churn_replicas[1], t0 + 80);
    }
}

/// Replicas that recover stale sit in `Syncing` and are excluded from
/// quorums: their pre-lockdown policy would permit (and so mint), but
/// the decision rides the fresh anchor alone and denies. Only after
/// catch-up readmits them — onto the *current* policy — does the
/// authority mint again.
#[test]
fn syncing_replicas_never_feed_the_mint() {
    let ctx = CryptoCtx::new();
    let domain = token_domain("solo", 9, &ctx);
    let authority = domain.capability.clone().unwrap();
    let replicas = domain.replica_names();

    let warm = RequestContext::basic("user-0@solo", "records/0", "read");
    assert!(domain.pep.serve(EnforceRequest::of(&warm, 0)).allowed);
    assert_eq!(authority.stats().minted, 1);

    // Two of three replicas crash over a lockdown push, then recover
    // stale: the resync gate holds both in `Syncing`. Their stale
    // policy (version 0) would *permit* the doctor — if the cluster
    // consulted them, they would outvote the fresh anchor and the
    // authority would mint from a revoked policy state.
    domain.crash_replica(&replicas[1]);
    domain.crash_replica(&replicas[2]);
    domain.propagate_policy(alternating_lockdown_gate("solo", 1), 10);
    domain.recover_replica(&replicas[1]);
    domain.recover_replica(&replicas[2]);
    assert_eq!(
        domain.replica_phase(&replicas[1]),
        Some(ReplicaPhase::Syncing)
    );
    assert_eq!(
        domain.replica_phase(&replicas[2]),
        Some(ReplicaPhase::Syncing)
    );

    // Only the fresh anchor is eligible: the lockdown denies, and —
    // critically — nothing is minted off the stale pair.
    let fresh = RequestContext::basic("user-0@solo", "records/1", "read");
    assert!(!domain.pep.serve(EnforceRequest::of(&fresh, 20)).allowed);
    assert_eq!(
        authority.stats().minted,
        1,
        "Syncing replicas must never feed the mint"
    );

    // Catch-up readmits the pair onto the lockdown version; lifting
    // it (version 2) permits again and mints at the current epoch.
    domain.catch_up_replica(&replicas[1], 30);
    domain.catch_up_replica(&replicas[2], 30);
    assert!(!domain.pep.serve(EnforceRequest::of(&fresh, 35)).allowed);
    domain.propagate_policy(alternating_lockdown_gate("solo", 2), 38);
    assert!(domain.pep.serve(EnforceRequest::of(&fresh, 40)).allowed);
    assert_eq!(authority.stats().minted, 2);
    assert!(domain.pep.serve(EnforceRequest::of(&fresh, 50)).allowed);
    assert_eq!(domain.pep.stats().token_hits, 1);
}

proptest! {
    /// Safety direction of the fast path: run the same request/push
    /// schedule through a token-enabled domain and an identical plain
    /// domain. The token domain may deny where the plain domain
    /// permits (a just-revoked token falling back through an
    /// unavailable path), but must never permit where the plain
    /// domain denies.
    #[test]
    fn token_path_never_permits_beyond_the_cluster(ops in prop::collection::vec(any::<u32>(), 1..48)) {
        let ctx = CryptoCtx::new();
        let with_tokens = token_domain("prop", 77, &ctx);
        let plain = {
            let mut builder = Domain::builder("prop")
                .policy(alternating_lockdown_gate("prop", 0))
                .clustered(
                    ClusterBuilder::new("prop")
                        .quorum(QuorumMode::Majority)
                        .resync(true),
                )
                .cluster_topology(1, 3)
                .seed(77);
            for u in 0..4 {
                builder = builder.subject_attr(&format!("user-{u}@prop"), "role", "doctor");
            }
            builder.build(&ctx)
        };
        let mut version = 0u64;
        for (i, op) in ops.iter().enumerate() {
            let t = i as u64 * 10;
            if op % 5 == 0 {
                version += 1;
                with_tokens.propagate_policy(alternating_lockdown_gate("prop", version), t);
                plain.propagate_policy(alternating_lockdown_gate("prop", version), t);
            }
            let req = RequestContext::basic(
                format!("user-{}@prop", (op >> 8) % 4),
                format!("records/{}", (op >> 16) % 3),
                "read",
            );
            let token_allowed = with_tokens.pep.serve(EnforceRequest::of(&req, t)).allowed;
            let plain_allowed = plain.pep.serve(EnforceRequest::of(&req, t)).allowed;
            prop_assert!(
                !token_allowed || plain_allowed,
                "op {i}: token path permitted where the cluster denied"
            );
            // With identical push schedules the two paths agree
            // outright; the one-sided assert above is the invariant,
            // this equality documents the steady state.
            prop_assert_eq!(token_allowed, plain_allowed);
        }
    }
}
