//! Integration tests spanning the whole stack: VO construction,
//! cross-domain flows, audit completeness, architecture comparisons.

use dacs::core::scenario::{grid_vo, healthcare_vo, with_shared_cas};
use dacs::core::workload::{generate, WorkloadSpec};
use dacs::crypto::sign::CryptoCtx;
use dacs::federation::{
    issue_capability_flow, push_flow, request_flow, ConflictClass, FlowKind, FlowNet, SizeModel,
};
use dacs::pep::EnforceRequest;
use dacs::policy::request::RequestContext;
use dacs::simnet::LinkSpec;

fn fnet(vo: &dacs::federation::Vo) -> FlowNet {
    FlowNet::build(vo, 5, LinkSpec::lan(), LinkSpec::wan())
}

#[test]
fn vo_workload_end_to_end_accounting() {
    let ctx = CryptoCtx::new();
    let vo = healthcare_vo(3, 20, &ctx);
    let mut net = fnet(&vo);
    let spec = WorkloadSpec {
        domains: 3,
        users_per_domain: 20,
        resources_per_domain: 50,
        cross_domain_fraction: 0.4,
        actions: vec!["read".into(), "write".into()],
        ..WorkloadSpec::default()
    };
    let items = generate(&spec, 200, 1);
    let mut allowed = 0usize;
    let mut total_messages = 0u64;
    for (i, item) in items.iter().enumerate() {
        let t = request_flow(
            &mut net,
            &vo,
            FlowKind::Pull,
            &item.subject,
            item.target_domain,
            &item.resource,
            &item.action,
            i as u64,
            SizeModel::Compact,
        );
        // Intra-domain pulls cost 4 messages, cross-domain 6.
        let expected = if item.cross_domain { 6 } else { 4 };
        assert_eq!(t.messages, expected, "item {item:?}");
        allowed += t.allowed as usize;
        total_messages += t.messages;
    }
    // Doctors are 70% of users; reads are half the actions; writes are
    // home-only. Sanity-band on the allow rate.
    assert!(allowed > 40 && allowed < 160, "allowed {allowed}");
    assert!(total_messages >= 4 * 200);

    // Audit completeness: every request produced exactly one enforcement
    // record somewhere.
    let audit_total: usize = vo.domains.iter().map(|d| d.pep.audit_log().len()).sum();
    assert_eq!(audit_total, 200);
}

#[test]
fn agent_pull_push_message_ordering() {
    // The paper's three query sequences: agent < push (amortized) < pull
    // in per-request message cost for cross-domain traffic.
    let ctx = CryptoCtx::new();
    let vo = with_shared_cas(healthcare_vo(2, 8, &ctx), 3_600_000);
    let mut net = fnet(&vo);
    let subject = "user-1@domain-1";

    let pull = request_flow(
        &mut net,
        &vo,
        FlowKind::Pull,
        subject,
        0,
        "records/1",
        "read",
        0,
        SizeModel::Compact,
    );
    assert!(pull.allowed);
    let agent = request_flow(
        &mut net,
        &vo,
        FlowKind::Agent,
        subject,
        0,
        "records/2",
        "read",
        1,
        SizeModel::Compact,
    );
    assert!(agent.allowed);

    let (cap, issue) = issue_capability_flow(
        &mut net,
        &vo,
        subject,
        "shared/*",
        &["read".to_string()],
        "domain-0",
        0,
        SizeModel::Compact,
    );
    let cap = cap.unwrap();
    let k = 10u64;
    let mut push_msgs = issue.messages;
    for i in 0..k {
        let t = push_flow(
            &mut net,
            &vo,
            subject,
            0,
            &format!("shared/{i}"),
            "read",
            &cap,
            10 + i,
            SizeModel::Compact,
        );
        assert!(t.allowed);
        push_msgs += t.messages;
    }
    let push_per_request = push_msgs as f64 / k as f64;
    assert!(agent.messages < pull.messages);
    assert!(push_per_request < pull.messages as f64);
}

#[test]
fn capability_expiry_enforced_end_to_end() {
    let ctx = CryptoCtx::new();
    let vo = with_shared_cas(healthcare_vo(2, 4, &ctx), 1_000); // 1 s TTL
    let mut net = fnet(&vo);
    let (cap, _) = issue_capability_flow(
        &mut net,
        &vo,
        "user-0@domain-1",
        "shared/*",
        &["read".to_string()],
        "domain-0",
        0,
        SizeModel::Compact,
    );
    let cap = cap.unwrap();
    let fresh = push_flow(
        &mut net,
        &vo,
        "user-0@domain-1",
        0,
        "shared/x",
        "read",
        &cap,
        500,
        SizeModel::Compact,
    );
    assert!(fresh.allowed);
    let stale = push_flow(
        &mut net,
        &vo,
        "user-0@domain-1",
        0,
        "shared/x",
        "read",
        &cap,
        5_000,
        SizeModel::Compact,
    );
    assert!(!stale.allowed, "expired capability must be rejected");
}

#[test]
fn chinese_wall_is_sticky_across_flows() {
    let ctx = CryptoCtx::new();
    let mut vo = healthcare_vo(3, 5, &ctx);
    vo.add_conflict_class(ConflictClass {
        name: "rivals".into(),
        domains: ["domain-0".to_string(), "domain-1".to_string()]
            .into_iter()
            .collect(),
    });
    let mut net = fnet(&vo);
    let subject = "user-0@domain-2";
    let first = request_flow(
        &mut net,
        &vo,
        FlowKind::Pull,
        subject,
        0,
        "records/1",
        "read",
        0,
        SizeModel::Compact,
    );
    assert!(first.allowed);
    // Unrelated domain is fine.
    let neutral = request_flow(
        &mut net,
        &vo,
        FlowKind::Pull,
        subject,
        2,
        "records/1",
        "read",
        1,
        SizeModel::Compact,
    );
    assert!(neutral.allowed);
    // The rival is permanently off-limits for this subject.
    for t in 2..5 {
        let rival = request_flow(
            &mut net,
            &vo,
            FlowKind::Pull,
            subject,
            1,
            "records/1",
            "read",
            t,
            SizeModel::Compact,
        );
        assert!(!rival.allowed);
    }
}

#[test]
fn grid_scenario_cross_domain_submission() {
    let ctx = CryptoCtx::new();
    let vo = grid_vo(3, &ctx);
    let mut net = fnet(&vo);
    // researcher@site-1 submits to site-0: role travels via federated
    // attribute fetch.
    let t = request_flow(
        &mut net,
        &vo,
        FlowKind::Pull,
        "researcher@site-1",
        0,
        "queue/batch",
        "submit",
        0,
        SizeModel::Compact,
    );
    assert!(t.allowed);
    assert_eq!(t.messages, 6);
    // A stranger cannot.
    let t = request_flow(
        &mut net,
        &vo,
        FlowKind::Pull,
        "stranger@site-1",
        0,
        "queue/batch",
        "submit",
        1,
        SizeModel::Compact,
    );
    assert!(!t.allowed);
}

#[test]
fn experiments_run_and_render() {
    // Small-scale smoke of the full experiment suite (the harness runs
    // the real scale).
    let tables = [
        dacs::core::experiments::e5_syndication(),
        dacs::core::experiments::e8_push_vs_pull(),
        dacs::core::experiments::e10_trust_negotiation(),
        dacs::core::experiments::e13_pdp_discovery(200),
    ];
    for t in &tables {
        let rendered = t.render();
        assert!(rendered.contains("##"));
        assert!(t.rows.iter().all(|r| r.len() == t.headers.len()));
    }
}

#[test]
fn pap_epoch_invalidates_decisions_vo_wide() {
    let ctx = CryptoCtx::new();
    let vo = healthcare_vo(1, 4, &ctx);
    let d = &vo.domains[0];
    let req = RequestContext::basic("user-0@domain-0", "records/5", "read");
    assert!(d.pep.serve(EnforceRequest::of(&req, 0)).allowed);
    // The domain authority installs a lockdown policy version at its PAP.
    let lockdown = dacs::policy::dsl::parse_policy(
        r#"
policy "domain-0-gate" first-applicable {
  rule "lockdown" deny { }
}
"#,
    )
    .unwrap();
    d.pap.submit("domain-bootstrap", lockdown, 100).unwrap();
    assert!(
        !d.pep.serve(EnforceRequest::of(&req, 101)).allowed,
        "new policy version applies"
    );
    // Rollback restores access.
    d.pap
        .rollback(
            "domain-bootstrap",
            &dacs::policy::policy::PolicyId::new("domain-0-gate"),
            1,
            200,
        )
        .unwrap();
    assert!(d.pep.serve(EnforceRequest::of(&req, 201)).allowed);
}
