//! Cross-crate integration tests: the VO flows riding per-domain PDP
//! clusters — all three query sequences (pull, push, agent) under
//! injected replica crashes, Chinese-Wall meta-policy across domains,
//! batch-aware PEP semantics, and the `Syncing` recovery lifecycle on
//! the multi-domain topology.

use dacs::cluster::{ClusterBuilder, QuorumMode, ReplicaPhase};
use dacs::core::scenario::{clustered_healthcare_vo, with_shared_cas};
use dacs::crypto::sign::CryptoCtx;
use dacs::federation::{
    issue_capability_flow, push_flow, request_flow, ConflictClass, Domain, FlowKind, FlowNet,
    SizeModel, Vo,
};
use dacs::pdp::{Binding, PdpDirectory};
use dacs::pep::{EnforceOptions, EnforceRequest};
use dacs::policy::policy::Decision;
use dacs::policy::request::RequestContext;
use dacs::simnet::LinkSpec;
use std::sync::Arc;

fn fnet(vo: &Vo) -> FlowNet {
    FlowNet::build(vo, 9, LinkSpec::lan(), LinkSpec::wan())
}

/// Pull, agent and push flows against clustered domains: every
/// enforcement routes through the quorum (and the batcher), audit
/// records cover every enforcement, and the shared directory exposes
/// every domain's replicas to ordinary discovery.
#[test]
fn pull_agent_and_push_flows_ride_clustered_domains() {
    let ctx = CryptoCtx::new();
    let directory = Arc::new(PdpDirectory::new());
    let vo = with_shared_cas(
        clustered_healthcare_vo(2, 8, &ctx, directory.clone(), true, true),
        3_600_000,
    );
    let mut net = fnet(&vo);

    // Cross-domain discovery: one shared directory sees every domain's
    // replicas, resolvable per domain through the ordinary binding API.
    for d in &vo.domains {
        assert_eq!(directory.endpoints_in(&d.name).len(), 3, "{}", d.name);
        assert!(directory.resolve(&Binding::Discovery, &d.name).is_some());
    }

    // Pull (cross-domain: the doctor role travels via the home IdP).
    let pull = request_flow(
        &mut net,
        &vo,
        FlowKind::Pull,
        "user-1@domain-1",
        0,
        "records/1",
        "read",
        0,
        SizeModel::Compact,
    );
    assert!(pull.allowed);
    assert!(pull.kinds.contains(&"attribute-query"));

    // Agent (PDP embedded in the PEP — same clustered decision path).
    let agent = request_flow(
        &mut net,
        &vo,
        FlowKind::Agent,
        "user-1@domain-1",
        0,
        "records/2",
        "read",
        1,
        SizeModel::Compact,
    );
    assert!(agent.allowed);

    // Push: capability issuance, then a capability-bearing request —
    // the local autonomy overlay still consults the cluster.
    let (cap, issue) = issue_capability_flow(
        &mut net,
        &vo,
        "user-1@domain-1",
        "shared/*",
        &["read".to_string()],
        "domain-0",
        2,
        SizeModel::Compact,
    );
    assert!(issue.allowed);
    let cap = cap.expect("prescreen permits shared reads");
    let push = push_flow(
        &mut net,
        &vo,
        "user-1@domain-1",
        0,
        "shared/data",
        "read",
        &cap,
        3,
        SizeModel::Compact,
    );
    assert!(push.allowed);

    // All three enforcements rode domain-0's cluster, through the
    // batcher, and each produced exactly one audit record.
    let cluster = vo.domains[0].cluster.as_ref().expect("clustered");
    let m = cluster.metrics();
    assert_eq!(m.queries, 3, "pull + agent + push overlay");
    assert_eq!(m.batches, 3, "batched PEP routes singles through flushes");
    assert_eq!(m.unavailable, 0);
    assert_eq!(vo.domains[0].pep.audit_log().len(), 3);

    // A replica crash degrades the quorum but never the answer.
    let names = vo.domains[0].replica_names();
    assert!(vo.domains[0].crash_replica(&names[0]));
    assert!(!directory.is_healthy(&names[0]));
    let trace = request_flow(
        &mut net,
        &vo,
        FlowKind::Pull,
        "user-1@domain-1",
        0,
        "records/3",
        "read",
        4,
        SizeModel::Compact,
    );
    assert!(trace.allowed, "two healthy replicas still form a majority");
    let m = cluster.metrics();
    assert!(m.degraded >= 1);
    assert_eq!(m.unavailable, 0);
    assert_eq!(vo.domains[0].pep.audit_log().len(), 4);
}

/// The VO-level Chinese Wall still binds across clustered domains, and
/// a wall-blocked request never reaches the target domain's cluster.
#[test]
fn chinese_wall_enforced_across_clustered_domains() {
    let ctx = CryptoCtx::new();
    let directory = Arc::new(PdpDirectory::new());
    let mut vo = clustered_healthcare_vo(3, 6, &ctx, directory, true, false);
    vo.add_conflict_class(ConflictClass {
        name: "rivals".into(),
        domains: ["domain-0".to_string(), "domain-1".to_string()]
            .into_iter()
            .collect(),
    });
    let mut net = fnet(&vo);
    let subject = "user-0@domain-2";

    let first = request_flow(
        &mut net,
        &vo,
        FlowKind::Pull,
        subject,
        0,
        "records/1",
        "read",
        0,
        SizeModel::Compact,
    );
    assert!(first.allowed);
    let before = vo.domains[1].cluster.as_ref().unwrap().metrics().queries;
    for t in 1..4 {
        let rival = request_flow(
            &mut net,
            &vo,
            FlowKind::Pull,
            subject,
            1,
            "records/1",
            "read",
            t,
            SizeModel::Compact,
        );
        assert!(!rival.allowed, "wall must block the rival domain");
        assert_eq!(rival.messages, 2, "blocked at the PEP boundary");
    }
    // The wall fired before enforcement: the rival's cluster was never
    // consulted, and no audit record was produced for blocked flows.
    let after = vo.domains[1].cluster.as_ref().unwrap().metrics().queries;
    assert_eq!(before, after);
    assert_eq!(vo.domains[1].pep.audit_log().len(), 0);
    // The neutral domain stays reachable.
    let neutral = request_flow(
        &mut net,
        &vo,
        FlowKind::Pull,
        subject,
        2,
        "records/1",
        "read",
        5,
        SizeModel::Compact,
    );
    assert!(neutral.allowed);
}

// The alternating per-domain gate shared with experiment E17: even
// versions permit doctors on `records/*`, odd versions are an
// admin-only lockdown — the integration suite pins exactly the
// behavior the experiment measures.
use dacs::core::scenario::alternating_lockdown_gate as churn_gate;

fn churn_domain(ctx: &CryptoCtx, name: &str, directory: Arc<PdpDirectory>, seed: u64) -> Domain {
    let mut builder = Domain::builder(name)
        .policy(churn_gate(name, 0))
        .clustered(
            ClusterBuilder::new(name)
                .quorum(QuorumMode::Majority)
                .directory(directory)
                .resync(true),
        )
        .batched(true)
        .seed(seed);
    for u in 0..4 {
        builder = builder.subject_attr(&format!("user-{u}@{name}"), "role", "doctor");
    }
    builder.build(ctx)
}

/// Pull flows under replica crashes plus concurrent per-domain policy
/// updates: every flow's outcome matches the domain's root-PAP ground
/// truth (zero false permits, zero false denies while a quorum holds),
/// and every enforcement left an audit record.
#[test]
fn crash_churn_with_updates_leaks_zero_false_permits() {
    let ctx = CryptoCtx::new();
    let directory = Arc::new(PdpDirectory::new());
    let vo = Vo::new(
        "vo-churn",
        ctx.clone(),
        vec![
            churn_domain(&ctx, "domain-0", directory.clone(), 31),
            churn_domain(&ctx, "domain-1", directory.clone(), 32),
        ],
    );
    let mut net = fnet(&vo);
    let replica_names: Vec<Vec<String>> = vo.domains.iter().map(|d| d.replica_names()).collect();

    let mut false_permits = 0u64;
    let mut false_denies = 0u64;
    let mut enforcements = 0usize;
    for t in 0..240u64 {
        // Deterministic churn: every 60 ticks, each domain's replicas
        // 1 and 2 sleep through a policy update and later catch up.
        let (round, step) = (t / 60, t % 60);
        for (d, domain) in vo.domains.iter().enumerate() {
            match step {
                10 => {
                    domain.crash_replica(&replica_names[d][1]);
                    domain.crash_replica(&replica_names[d][2]);
                }
                20 => {
                    domain.propagate_policy(churn_gate(&domain.name, round + 1), t);
                }
                30 => {
                    domain.recover_replica(&replica_names[d][1]);
                    domain.recover_replica(&replica_names[d][2]);
                }
                45 => {
                    domain.catch_up_replica(&replica_names[d][1], t);
                    domain.catch_up_replica(&replica_names[d][2], t);
                }
                _ => {}
            }
        }
        // Alternate home/cross-domain pulls over both domains.
        let home = (t % 2) as usize;
        let target = if t % 5 == 0 { 1 - home } else { home };
        let subject = format!("user-{}@domain-{home}", t % 4);
        let request = RequestContext::basic(subject.as_str(), "records/1", "read");
        let domain = &vo.domains[target];
        let enriched = if domain.is_home_of(&subject) {
            request.clone()
        } else {
            dacs::federation::federated_enrich(&vo, &request, &subject)
        };
        let expected = domain.pdp.decide(&enriched, t).decision;
        let trace = request_flow(
            &mut net,
            &vo,
            FlowKind::Pull,
            &subject,
            target,
            "records/1",
            "read",
            t,
            SizeModel::Compact,
        );
        enforcements += 1;
        if trace.allowed && expected != Decision::Permit {
            false_permits += 1;
        }
        if !trace.allowed && expected == Decision::Permit {
            false_denies += 1;
        }
    }
    assert_eq!(false_permits, 0, "epoch gating must hold under churn");
    assert_eq!(
        false_denies, 0,
        "the fresh anchor keeps the quorum truthful"
    );
    // Audit completeness: one record per enforcement, VO-wide.
    let audit_total: usize = vo.domains.iter().map(|d| d.pep.audit_log().len()).sum();
    assert_eq!(audit_total, enforcements);
    // The churn actually exercised the lifecycle.
    for d in &vo.domains {
        let m = d.cluster.as_ref().unwrap().metrics();
        assert!(m.resyncs >= 4, "{}: resyncs {}", d.name, m.resyncs);
        assert!(m.stale_decisions_avoided > 0, "{}", d.name);
        assert_eq!(m.unavailable, 0, "{}", d.name);
    }
}

/// The `Syncing` lifecycle over the multi-domain topology (extends
/// E16's guarantee): a replica recovering mid-flow is excluded from
/// its domain's quorum until `catch_up` replays it to the domain's
/// max epoch — in every domain independently.
#[test]
fn recovering_replica_syncs_before_rejoining_each_domains_quorum() {
    let ctx = CryptoCtx::new();
    let directory = Arc::new(PdpDirectory::new());
    let vo = Vo::new(
        "vo-sync",
        ctx.clone(),
        vec![
            churn_domain(&ctx, "domain-0", directory.clone(), 41),
            churn_domain(&ctx, "domain-1", directory.clone(), 42),
        ],
    );
    let mut net = fnet(&vo);

    for (d, domain) in vo.domains.iter().enumerate() {
        let names = domain.replica_names();
        let subject = format!("user-0@{}", domain.name);
        let pull = |net: &mut FlowNet, now: u64| {
            request_flow(
                net,
                &vo,
                FlowKind::Pull,
                &subject,
                d,
                "records/1",
                "read",
                now,
                SizeModel::Compact,
            )
        };
        assert!(
            pull(&mut net, 0).allowed,
            "{}: doctors read v0",
            domain.name
        );

        // r1 crashes; the lockdown lands while it sleeps.
        domain.crash_replica(&names[1]);
        let epoch = domain.propagate_policy(churn_gate(&domain.name, 1), 10);
        assert_eq!(epoch.0, 2, "{}: bootstrap + lockdown", domain.name);

        // Mid-flow recovery: stale → Syncing, excluded from the quorum.
        domain.recover_replica(&names[1]);
        assert_eq!(
            domain.replica_phase(&names[1]),
            Some(ReplicaPhase::Syncing),
            "{}",
            domain.name
        );
        let denied = pull(&mut net, 11);
        assert!(!denied.allowed, "{}: lockdown enforced", domain.name);
        let m = domain.cluster.as_ref().unwrap().metrics();
        assert!(m.stale_decisions_avoided >= 1, "{}", domain.name);
        // Readmission is refused until the replay lands.
        assert!(!domain.cluster.as_ref().unwrap().complete_resync(&names[1]));

        // Catch-up replays to the domain's max epoch and readmits.
        assert!(domain.catch_up_replica(&names[1], 20));
        assert_eq!(
            domain.replica_phase(&names[1]),
            Some(ReplicaPhase::Healthy),
            "{}",
            domain.name
        );
        // Back to a full, truthful quorum: the next update flips the
        // decision again with all three replicas voting.
        domain.propagate_policy(churn_gate(&domain.name, 2), 30);
        assert!(pull(&mut net, 31).allowed, "{}", domain.name);
        let m = domain.cluster.as_ref().unwrap().metrics();
        assert_eq!(m.resyncs, 1, "{}", domain.name);
    }
}

/// Regression pinning batch-aware PEP semantics: decisions and
/// obligations via the batched path are identical to unbatched
/// enforcement, and a deny inside a coalesced batch never leaks as a
/// permit to a neighboring query.
#[test]
fn batched_enforcement_matches_unbatched_and_denies_never_leak() {
    let ctx = CryptoCtx::new();
    let unbatched_vo =
        clustered_healthcare_vo(1, 8, &ctx, Arc::new(PdpDirectory::new()), true, false);
    let batched_vo = clustered_healthcare_vo(1, 8, &ctx, Arc::new(PdpDirectory::new()), true, true);
    let unbatched = &unbatched_vo.domains[0];
    let batched = &batched_vo.domains[0];

    // Doctor read (permit + log obligation), auditor read (explicit
    // deny), stranger write (deny), shared/* (NotApplicable → fail-safe
    // deny): the full decision surface.
    let requests = [
        RequestContext::basic("user-0@domain-0", "records/1", "read"),
        RequestContext::basic("user-7@domain-0", "records/1", "read"),
        RequestContext::basic("mallory@domain-0", "records/2", "write"),
        RequestContext::basic("user-0@domain-0", "shared/1", "read"),
    ];
    for (t, request) in requests.iter().enumerate() {
        let a = unbatched.pep.serve(EnforceRequest::of(request, t as u64));
        let b = batched.pep.serve(EnforceRequest::of(request, t as u64));
        assert_eq!(a.allowed, b.allowed, "{request:?}");
        assert_eq!(a.decision, b.decision, "{request:?}");
        assert_eq!(a.fulfilled, b.fulfilled, "obligations must match");
    }

    // One coalesced batch mixing permits and denies, with duplicates:
    // each ticket gets its own verdict — the duplicate deny coalesces
    // onto one evaluation yet never surfaces as its neighbor's permit.
    let batch = vec![
        requests[0].clone(), // permit
        requests[1].clone(), // deny
        requests[0].clone(), // duplicate permit (coalesces)
        requests[1].clone(), // duplicate deny (coalesces)
        requests[3].clone(), // fail-safe deny
    ];
    let coalesced_before = batched.cluster.as_ref().unwrap().metrics().coalesced;
    let results = batched
        .pep
        .serve_batch(&batch, 100, EnforceOptions::default());
    assert_eq!(results.len(), 5);
    assert!(results[0].allowed);
    assert!(!results[1].allowed);
    assert_eq!(results[1].decision, Decision::Deny);
    assert!(results[2].allowed, "duplicate permit follows its twin");
    assert!(!results[3].allowed, "coalesced deny stays a deny");
    assert_eq!(results[3].decision, Decision::Deny);
    assert!(!results[4].allowed, "NotApplicable stays fail-safe denied");
    assert_eq!(results[0].fulfilled, vec!["log".to_string()]);
    let m = batched.cluster.as_ref().unwrap().metrics();
    assert_eq!(
        m.coalesced - coalesced_before,
        2,
        "both duplicates coalesced onto outstanding evaluations"
    );
    // Batched enforcement audits every ticket.
    assert_eq!(batched.pep.audit_log().len(), requests.len() + batch.len());
}
