//! Multi-threaded PEP stress tests (ISSUE 9): 8 closed-loop threads
//! hammer one shared [`Pep`] with mixed permit/deny/token traffic and
//! the suite then audits the atomic counters against exact accounting
//! identities. Because every stat is a monotonic `u64` atomic and every
//! request takes exactly one path (token hit, decision-cache hit, or
//! source query), the identities hold with equality even under full
//! contention — a torn counter, a double-counted request, or a request
//! lost between the stripes breaks a sum, not a tolerance.
//!
//! [`Pep`]: dacs::pep::Pep

use dacs::capability::{CapabilityAuthority, CapabilityKey};
use dacs::crypto::sign::CryptoCtx;
use dacs::pap::Pap;
use dacs::pdp::{CacheConfig, Pdp};
use dacs::pep::{EnforceRequest, MintingSource, Pep};
use dacs::pip::PipRegistry;
use dacs::policy::dsl::parse_policy;
use dacs::policy::policy::{PolicyElement, PolicyId};
use dacs::policy::request::RequestContext;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 1_500;

/// Attribute-free gate: reads on `records/*` permit (and, being
/// unconditional, mint capability tokens), everything else denies via
/// the deny-unless-permit envelope — ground truth is decidable from
/// the request alone, so threads can verify every verdict inline.
const GATE: &str = r#"
policy "gate" deny-unless-permit {
  rule "readers" permit {
    target { resource "id" ~= "records/*"; action "id" == "read"; }
  }
}
"#;

fn build_pdp() -> Arc<Pdp> {
    let pap = Arc::new(Pap::new("pap.conc"));
    pap.submit("admin", parse_policy(GATE).unwrap(), 0).unwrap();
    Arc::new(Pdp::new(
        "pdp.conc",
        pap,
        PolicyElement::PolicyRef(PolicyId::new("gate")),
        Arc::new(PipRegistry::new()),
    ))
}

/// The `t`-th thread's `i`-th request: a working set of 16 subjects ×
/// 8 resources, one write (deny) for every two reads (permit).
fn request_for(t: usize, i: usize) -> (RequestContext, bool) {
    let write = (t + i) % 3 == 2;
    let action = if write { "write" } else { "read" };
    let request = RequestContext::basic(
        format!("user-{}@conc", (t * 31 + i) % 16),
        format!("records/{}", i % 8),
        action,
    );
    (request, !write)
}

/// Drives `THREADS` threads through the shared PEP and returns the
/// exact (allowed, denied) counts the ground truth predicts, after
/// asserting every individual verdict matched it.
fn hammer(pep: &Pep) -> (u64, u64) {
    let barrier = Barrier::new(THREADS);
    let expected_allowed = AtomicU64::new(0);
    let wrong = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (barrier, expected_allowed, wrong) = (&barrier, &expected_allowed, &wrong);
            s.spawn(move || {
                barrier.wait();
                for i in 0..REQUESTS_PER_THREAD {
                    let (request, expect_permit) = request_for(t, i);
                    let response = pep.serve(EnforceRequest::of(&request, i as u64));
                    if expect_permit {
                        expected_allowed.fetch_add(1, Ordering::Relaxed);
                    }
                    if response.allowed != expect_permit {
                        wrong.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(wrong.load(Ordering::Relaxed), 0, "verdicts diverged");
    let total = (THREADS * REQUESTS_PER_THREAD) as u64;
    let allowed = expected_allowed.load(Ordering::Relaxed);
    (allowed, total - allowed)
}

/// Cache-only PEP: every enforcement is either a decision-cache hit or
/// a miss that reached the PDP exactly once — `hits + misses ==
/// enforcements` and `pdp decisions == misses`, with zero slack.
#[test]
fn eight_threads_share_one_striped_decision_cache() {
    let pdp = build_pdp();
    let pep = Pep::builder("pep.conc")
        .source(pdp.clone())
        .cache(CacheConfig {
            capacity: 4096,
            ttl_ms: u64::MAX / 2,
        })
        .audit_capacity(1024)
        .build();

    let (allowed, denied) = hammer(&pep);
    let total = (THREADS * REQUESTS_PER_THREAD) as u64;

    let stats = pep.stats();
    assert_eq!(stats.allowed, allowed);
    assert_eq!(stats.denied, denied);
    assert_eq!(stats.failsafe_denials, 0);
    assert_eq!(stats.allowed + stats.denied, total);

    // The accounting identity the striped cache must preserve under
    // contention: no request bypasses the cache, none is counted twice.
    let cache = pep.cache_stats().expect("decision cache configured");
    assert_eq!(cache.hits + cache.misses, total);
    assert_eq!(stats.cache_hits, cache.hits);
    assert_eq!(
        pdp.metrics().decisions,
        cache.misses,
        "one source query per miss"
    );
    // 128 distinct requests against 12 000 serves: the cache must
    // actually carry the load, not merely stay consistent.
    assert!(cache.hits > total / 2, "hit-starved: {cache:?}");

    // Bounded audit ring retention contract: capacity retained, the
    // overflow counted, nothing lost in between.
    assert_eq!(pep.audit_log().len(), 1024);
    assert_eq!(stats.audit_dropped, total - 1024);
}

/// Capability + cache PEP: permits ride the token fast path, denies
/// fall through to the decision cache. Every request probes the token
/// cache exactly once, and the three disjoint outcomes — token hit,
/// decision-cache hit, source query — must sum back to the enforcement
/// count.
#[test]
fn eight_threads_share_token_and_decision_caches() {
    let pdp = build_pdp();
    let authority = Arc::new(CapabilityAuthority::new(
        CapabilityKey::generate(&mut StdRng::seed_from_u64(0xC0)),
        u64::MAX / 2,
    ));
    let pep = Pep::builder("pep.conc-cap")
        .audience("conc")
        .source(Arc::new(MintingSource::new(pdp.clone(), authority.clone())))
        .crypto(CryptoCtx::new())
        .capability_fastpath(authority, 4096)
        .cache(CacheConfig {
            capacity: 4096,
            ttl_ms: u64::MAX / 2,
        })
        .build();

    let (allowed, denied) = hammer(&pep);
    let total = (THREADS * REQUESTS_PER_THREAD) as u64;

    let stats = pep.stats();
    assert_eq!(stats.allowed, allowed);
    assert_eq!(stats.denied, denied);
    assert_eq!(stats.failsafe_denials, 0);
    assert_eq!(stats.token_rejects, 0, "no revocations in this run");

    let tokens = pep.token_cache_stats().expect("token cache configured");
    let cache = pep.cache_stats().expect("decision cache configured");
    // Every serve probes the token cache first …
    assert_eq!(tokens.hits + tokens.misses, total);
    assert_eq!(stats.token_hits, tokens.hits);
    // … token misses fall through to the decision cache …
    assert_eq!(cache.hits + cache.misses, tokens.misses);
    assert_eq!(stats.cache_hits, cache.hits);
    // … and decision-cache misses each cost exactly one source query,
    // so the three paths partition the traffic.
    assert_eq!(pdp.metrics().decisions, cache.misses);
    assert_eq!(tokens.hits + cache.hits + cache.misses, total);
    // The permit working set is 16 subjects × 8 resources: after the
    // first lap, reads ride minted tokens.
    assert!(stats.tokens_minted >= 1);
    assert!(
        stats.token_hits > allowed / 2,
        "token path hit-starved: {stats:?}"
    );
}
