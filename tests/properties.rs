//! Property-based tests over core invariants: combining algorithms,
//! glob matching, DSL round-trips, codec round-trips, cache behaviour,
//! and the crypto substrate.

use dacs::policy::combining::Combiner;
use dacs::policy::dsl::{parse_policy, print_policy};
use dacs::policy::glob::{glob_match, globs_may_overlap};
use dacs::policy::policy::{CombiningAlg, Decision, Effect, Obligation, Policy, PolicyId, Rule};
use dacs::policy::target::{AttrMatch, Target};
use dacs::policy::AttributeId;
use proptest::prelude::*;

fn arb_decision() -> impl Strategy<Value = Decision> {
    prop_oneof![
        Just(Decision::Permit),
        Just(Decision::Deny),
        Just(Decision::NotApplicable),
        Just(Decision::Indeterminate),
    ]
}

fn combine(alg: CombiningAlg, ds: &[Decision]) -> Decision {
    Combiner::combine_all(alg, ds.iter().map(|d| (*d, Vec::<Obligation>::new()))).0
}

proptest! {
    #[test]
    fn deny_overrides_honours_any_deny(ds in prop::collection::vec(arb_decision(), 0..12)) {
        let out = combine(CombiningAlg::DenyOverrides, &ds);
        if ds.contains(&Decision::Deny) {
            prop_assert_eq!(out, Decision::Deny);
        } else {
            prop_assert_ne!(out, Decision::Deny);
        }
    }

    #[test]
    fn permit_overrides_honours_any_permit(ds in prop::collection::vec(arb_decision(), 0..12)) {
        let out = combine(CombiningAlg::PermitOverrides, &ds);
        if ds.contains(&Decision::Permit) {
            prop_assert_eq!(out, Decision::Permit);
        } else {
            prop_assert_ne!(out, Decision::Permit);
        }
    }

    #[test]
    fn deny_unless_permit_is_total(ds in prop::collection::vec(arb_decision(), 0..12)) {
        let out = combine(CombiningAlg::DenyUnlessPermit, &ds);
        prop_assert!(out == Decision::Permit || out == Decision::Deny);
        prop_assert_eq!(out == Decision::Permit, ds.contains(&Decision::Permit));
    }

    #[test]
    fn first_applicable_returns_first_applicable(ds in prop::collection::vec(arb_decision(), 0..12)) {
        let out = combine(CombiningAlg::FirstApplicable, &ds);
        let first = ds.iter().find(|d| **d != Decision::NotApplicable);
        match first {
            Some(d) => prop_assert_eq!(out, *d),
            None => prop_assert_eq!(out, Decision::NotApplicable),
        }
    }

    #[test]
    fn glob_literal_prefix_matches_itself(s in "[a-z/]{0,20}") {
        prop_assert!(glob_match(&s, &s));
        let prefixed = format!("{s}*");
        prop_assert!(glob_match(&prefixed, &s));
        prop_assert!(glob_match("*", &s));
    }

    #[test]
    fn glob_overlap_is_sound(a in "[ab/]{0,6}", b in "[ab/]{0,6}", probe in "[ab/]{0,6}") {
        // If both patterns match a common literal, overlap must be true.
        if glob_match(&a, &probe) && glob_match(&b, &probe) {
            prop_assert!(globs_may_overlap(&a, &b));
        }
    }

    #[test]
    fn codec_roundtrips_request_contexts(
        subject in "[a-z]{1,8}", resource in "[a-z/]{1,12}", action in "[a-z]{1,6}",
        extra in prop::collection::vec(("[a-z]{1,6}", -100i64..100), 0..4),
    ) {
        let mut req = dacs::policy::request::RequestContext::basic(
            subject.as_str(), resource.as_str(), action.as_str());
        for (name, v) in &extra {
            req.add(AttributeId::subject(name), *v);
        }
        let bytes = dacs::wire::codec::to_bytes(&req).unwrap();
        let back: dacs::policy::request::RequestContext =
            dacs::wire::codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(req, back);
    }

    #[test]
    fn dsl_roundtrip_for_generated_policies(
        id in "[a-z][a-z0-9-]{0,12}",
        role in "[a-z]{1,8}",
        resource in "[a-z]{1,8}",
        effect_permit in any::<bool>(),
        n_rules in 1usize..4,
    ) {
        let mut policy = Policy::new(PolicyId::new(id), CombiningAlg::FirstApplicable);
        for i in 0..n_rules {
            let effect = if effect_permit { Effect::Permit } else { Effect::Deny };
            policy = policy.with_rule(
                Rule::new(format!("r{i}"), effect).with_target(Target::all(vec![
                    AttrMatch::equals(AttributeId::subject("role"), role.as_str()),
                    AttrMatch::glob(AttributeId::resource("id"), format!("{resource}/*")),
                ])),
            );
        }
        let printed = print_policy(&policy);
        let reparsed = parse_policy(&printed).unwrap();
        prop_assert_eq!(policy, reparsed);
    }

    #[test]
    fn hmac_tags_differ_on_any_input_change(
        key in prop::collection::vec(any::<u8>(), 1..32),
        msg in prop::collection::vec(any::<u8>(), 0..64),
        flip in 0usize..64,
    ) {
        let t1 = dacs::crypto::hmac::hmac_sha256(&key, &msg);
        let mut msg2 = msg.clone();
        if msg2.is_empty() {
            msg2.push(1);
        } else {
            let i = flip % msg2.len();
            msg2[i] ^= 1;
        }
        let t2 = dacs::crypto::hmac::hmac_sha256(&key, &msg2);
        prop_assert_ne!(t1, t2);
    }

    #[test]
    fn base64_roundtrips(data in prop::collection::vec(any::<u8>(), 0..128)) {
        let enc = dacs::wire::base64::encode(&data);
        prop_assert_eq!(dacs::wire::base64::decode(&enc), Some(data));
    }

    #[test]
    fn ttl_cache_never_serves_expired(
        ttl in 1u64..50,
        ops in prop::collection::vec((0u32..8, 0u64..200), 1..40),
    ) {
        let mut cache = dacs::pdp::TtlLruCache::<u32, u64>::new(4, ttl);
        let mut inserted_at: std::collections::HashMap<u32, u64> = Default::default();
        let mut now = 0;
        for (key, advance) in ops {
            now += advance;
            if let Some(_v) = cache.get(&key, now) {
                let at = inserted_at[&key];
                prop_assert!(now < at + ttl, "expired entry served");
            } else {
                cache.insert(key, now, now);
                inserted_at.insert(key, now);
            }
        }
    }

    /// Consistent-hash stability (ISSUE 5): growing a `ShardRouter` by
    /// one shard moves only the keys the new shard's ring points
    /// capture — every moved key lands on the new shard and the
    /// moved fraction stays well under half — and shrinking by one
    /// shard never remaps a key that was not on the removed shard.
    #[test]
    fn shard_router_scaling_remaps_a_bounded_fraction(
        n in 2usize..9,
        salt in any::<u64>(),
    ) {
        use dacs::cluster::ShardRouter;
        let before = ShardRouter::new(n);
        let grown = ShardRouter::new(n + 1);
        let shrunk = ShardRouter::new(n - 1);
        let keys: Vec<String> = (0..512)
            .map(|i| format!("user-{salt}-{i}\u{1f}records/{}", i % 97))
            .collect();
        let mut moved_on_growth = 0usize;
        for key in &keys {
            let b = before.shard_for_key(key);
            prop_assert!(b < n);
            // Stable within a router and across rebuilds.
            prop_assert_eq!(b, before.shard_for_key(key));
            prop_assert_eq!(b, ShardRouter::new(n).shard_for_key(key));
            let g = grown.shard_for_key(key);
            if g != b {
                moved_on_growth += 1;
                // A key may only ever move *to* the added shard: the
                // surviving shards' ring points are identical in both
                // rings, so unaffected keys cannot be re-routed.
                prop_assert_eq!(g, n, "key moved between surviving shards");
            }
            let s = shrunk.shard_for_key(key);
            if b != n - 1 {
                // Keys off the removed (last) shard must not move.
                prop_assert_eq!(s, b, "unaffected key remapped on shrink");
            } else {
                prop_assert!(s < n - 1, "orphaned key must land on a survivor");
            }
        }
        // Bounded movement: the expected share is 1/(n+1) of the keys;
        // half is a generous, non-flaky ceiling (hash % n would move
        // (n-1)/n of them).
        prop_assert!(
            moved_on_growth < keys.len() / 2,
            "{} of {} keys moved on scale-out", moved_on_growth, keys.len()
        );
        prop_assert!(moved_on_growth > 0, "a new shard must capture some keys");
    }

    /// Read-path concurrency (ISSUE 9): with a single stripe, the
    /// striped cache degenerates to exactly the single-lock
    /// `TtlLruCache` it wraps — every get answers identically, and the
    /// lengths and aggregate stats match after any op sequence. (The
    /// per-stripe equivalence for multi-stripe configurations lives in
    /// `dacs-pdp`'s own property suite, which routes a bank of
    /// single-lock caches by `stripe_index`.)
    #[test]
    fn striped_cache_with_one_stripe_matches_single_lock(
        capacity in 1usize..6,
        ttl in 1u64..60,
        ops in prop::collection::vec((0u32..10, 0u64..30, any::<bool>()), 1..60),
    ) {
        let striped = dacs::pdp::ConcurrentTtlCache::<u32, u64>::with_stripes(1, capacity, ttl);
        let mut single = dacs::pdp::TtlLruCache::<u32, u64>::new(capacity, ttl);
        let mut now = 0u64;
        for (key, advance, write) in ops {
            now += advance;
            if write {
                striped.insert(key, u64::from(key), now);
                single.insert(key, u64::from(key), now);
            } else {
                prop_assert_eq!(striped.get(&key, now), single.get(&key, now));
            }
        }
        prop_assert_eq!(striped.len(), single.len());
        let (a, b) = (striped.stats(), single.stats());
        prop_assert_eq!(a.hits, b.hits);
        prop_assert_eq!(a.misses, b.misses);
        prop_assert_eq!(a.evictions, b.evictions);
        prop_assert_eq!(a.expirations, b.expirations);
    }

    #[test]
    fn zipf_sampler_in_range(n in 1usize..200, s in 0.0f64..2.5, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = dacs::core::workload::ZipfSampler::new(n, s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}

#[test]
fn merkle_signature_forgery_resistance_smoke() {
    use dacs::crypto::merkle::MerkleKeypair;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut kp = MerkleKeypair::generate(&mut rng, 3);
    let root = kp.public_root();
    let sig = kp.sign(b"permit alice").unwrap();
    // Any single-bit flip in the serialized WOTS signature must break it.
    for byte in [0usize, 100, 1000, 2000] {
        let mut forged = sig.clone();
        let idx = byte % forged.wots_sig.len();
        forged.wots_sig[idx] ^= 0x01;
        assert!(!root.verify(b"permit alice", &forged));
    }
}
