//! Offline shim of the `criterion` API subset this workspace uses.
//!
//! Implements real wall-clock measurement (warm-up, then per-iteration
//! timed samples, reporting mean plus p50/p95/p99 ns/iter) but none of
//! criterion's plots or baselines. Good enough for `cargo bench` to run
//! and print comparable numbers — including tail latency — in an
//! offline environment.
//!
//! Per-iteration sampling costs two `Instant::now()` calls per
//! iteration (tens of nanoseconds); treat sub-100 ns benchmarks'
//! absolute numbers with suspicion, but percentile *shape* (does the
//! tail blow up?) is exactly what the cluster fan-out benches need.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup products.
    SmallInput,
    /// Large per-iteration setup products.
    LargeInput,
    /// One setup product per measured batch.
    PerIteration,
}

/// Measurement configuration and reporting.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the target sample count (used as a minimum iteration count).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            config: BenchConfig {
                warm_up_time: self.warm_up_time,
                measurement_time: self.measurement_time,
                min_iters: self.sample_size as u64,
            },
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(r) => println!(
                "bench {id:<48} {:>12.1} ns/iter  p50 {:>10} p95 {:>10} p99 {:>10} ({} iters)",
                r.mean_ns, r.p50_ns, r.p95_ns, r.p99_ns, r.iters
            ),
            None => println!("bench {id:<48} (no measurement)"),
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group {}", name.into());
        BenchmarkGroup { criterion: self }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.criterion.bench_function(id, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

#[derive(Clone, Copy)]
struct BenchConfig {
    warm_up_time: Duration,
    measurement_time: Duration,
    min_iters: u64,
}

/// Upper bound on stored per-iteration samples. A nanosecond-scale
/// routine can run tens of millions of iterations inside the
/// measurement window; capping the sample vector (8 MB at this bound)
/// keeps memory flat, and measurement simply ends early once the cap is
/// reached — a million samples is plenty for p99.
const MAX_SAMPLES: usize = 1_000_000;

#[derive(Clone, Copy)]
struct BenchResult {
    mean_ns: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    iters: u64,
}

impl BenchResult {
    /// Summarizes per-iteration samples (nanoseconds) into mean and
    /// percentiles. `samples` must be non-empty.
    fn from_samples(samples: &mut [u64]) -> BenchResult {
        samples.sort_unstable();
        let iters = samples.len() as u64;
        let mean_ns = samples.iter().sum::<u64>() as f64 / iters as f64;
        let pct = |q: f64| -> u64 {
            let i = ((samples.len() as f64 - 1.0) * q).round() as usize;
            samples[i.min(samples.len() - 1)]
        };
        BenchResult {
            mean_ns,
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            iters,
        }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    config: BenchConfig,
    result: Option<BenchResult>,
}

impl Bencher {
    /// Measures a routine, timing every iteration individually so the
    /// report carries tail percentiles alongside the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        // Measurement: one sample per iteration, bounded by MAX_SAMPLES.
        let mut samples: Vec<u64> = Vec::with_capacity(self.config.min_iters as usize);
        let overall = Instant::now();
        let deadline = overall + self.config.measurement_time;
        while samples.len() < MAX_SAMPLES
            && ((samples.len() as u64) < self.config.min_iters || Instant::now() < deadline)
        {
            let start = Instant::now();
            black_box(routine());
            samples.push(start.elapsed().as_nanos() as u64);
        }
        self.result = Some(BenchResult::from_samples(&mut samples));
    }

    /// Measures a routine that times itself: `routine(iters)` runs the
    /// workload `iters` times and returns the wall-clock [`Duration`]
    /// the batch took — criterion's escape hatch for multi-threaded
    /// workloads, where timing each call from outside would charge
    /// thread setup to the measured path. Each stored sample is the
    /// per-iteration average over a calibrated batch.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        // Calibrate a batch that keeps each sample well above timer
        // and thread-setup noise (~0.5 ms) without starving the sample
        // count.
        let probe = routine(64).as_nanos().max(1) as u64;
        let per_iter = (probe / 64).max(1);
        let batch = (500_000 / per_iter).clamp(64, 1_048_576);
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine(batch));
        }
        let mut samples: Vec<u64> = Vec::with_capacity(self.config.min_iters as usize);
        let overall = Instant::now();
        let deadline = overall + self.config.measurement_time;
        while samples.len() < MAX_SAMPLES
            && ((samples.len() as u64) < self.config.min_iters || Instant::now() < deadline)
        {
            let elapsed = routine(batch).as_nanos() as u64;
            samples.push((elapsed / batch).max(1));
        }
        self.result = Some(BenchResult::from_samples(&mut samples));
    }

    /// Measures a routine with per-iteration setup excluded from timing.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        let mut samples: Vec<u64> = Vec::with_capacity(self.config.min_iters as usize);
        let overall = Instant::now();
        while samples.len() < MAX_SAMPLES
            && ((samples.len() as u64) < self.config.min_iters
                || (overall.elapsed() < self.config.measurement_time))
        {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as u64);
        }
        self.result = Some(BenchResult::from_samples(&mut samples));
    }
}

/// An identity function that resists trivial optimization.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group runner, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_summarizes_percentiles() {
        let mut samples: Vec<u64> = (1..=100).collect();
        let r = BenchResult::from_samples(&mut samples);
        assert_eq!(r.iters, 100);
        assert!((r.mean_ns - 50.5).abs() < 1e-9);
        assert_eq!(r.p50_ns, 51);
        assert_eq!(r.p95_ns, 95);
        assert_eq!(r.p99_ns, 99);
        // A 2% tail of outliers moves p99 (and the mean) but not p50.
        let mut skewed: Vec<u64> = vec![10; 98];
        skewed.extend([100_000, 100_000]);
        let s = BenchResult::from_samples(&mut skewed);
        assert_eq!(s.p50_ns, 10);
        assert_eq!(s.p95_ns, 10);
        assert_eq!(s.p99_ns, 100_000);
        assert!(s.mean_ns > 1_000.0);
    }

    #[test]
    fn bencher_reports_all_percentile_fields() {
        let mut b = Bencher {
            config: BenchConfig {
                warm_up_time: Duration::from_millis(1),
                measurement_time: Duration::from_millis(5),
                min_iters: 10,
            },
            result: None,
        };
        b.iter(|| std::hint::black_box(7u64.wrapping_mul(13)));
        let r = b.result.expect("measured");
        assert!(r.iters >= 10);
        assert!(r.p50_ns <= r.p95_ns && r.p95_ns <= r.p99_ns);
    }
}
