//! Offline shim of the `criterion` API subset this workspace uses.
//!
//! Implements real wall-clock measurement (warm-up, then timed
//! iterations, reporting mean ns/iter) but none of criterion's
//! statistics, plots, or baselines. Good enough for `cargo bench` to
//! run and print comparable numbers in an offline environment.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup products.
    SmallInput,
    /// Large per-iteration setup products.
    LargeInput,
    /// One setup product per measured batch.
    PerIteration,
}

/// Measurement configuration and reporting.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the target sample count (used as a minimum iteration count).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            config: BenchConfig {
                warm_up_time: self.warm_up_time,
                measurement_time: self.measurement_time,
                min_iters: self.sample_size as u64,
            },
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(r) => println!(
                "bench {id:<48} {:>12.1} ns/iter ({} iters)",
                r.ns_per_iter, r.iters
            ),
            None => println!("bench {id:<48} (no measurement)"),
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group {}", name.into());
        BenchmarkGroup { criterion: self }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        self.criterion.bench_function(id, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

#[derive(Clone, Copy)]
struct BenchConfig {
    warm_up_time: Duration,
    measurement_time: Duration,
    min_iters: u64,
}

#[derive(Clone, Copy)]
struct BenchResult {
    ns_per_iter: f64,
    iters: u64,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    config: BenchConfig,
    result: Option<BenchResult>,
}

impl Bencher {
    /// Measures a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        // Measurement.
        let start = Instant::now();
        let deadline = start + self.config.measurement_time;
        let mut iters = 0u64;
        while iters < self.config.min_iters || Instant::now() < deadline {
            black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.result = Some(BenchResult {
            ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
            iters,
        });
    }

    /// Measures a routine with per-iteration setup excluded from timing.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let overall = Instant::now();
        while iters < self.config.min_iters || (overall.elapsed() < self.config.measurement_time) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.result = Some(BenchResult {
            ns_per_iter: measured.as_nanos() as f64 / iters as f64,
            iters,
        });
    }
}

/// An identity function that resists trivial optimization.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group runner, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
