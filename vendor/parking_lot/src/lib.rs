//! API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `parking_lot` API it uses:
//! [`Mutex`] and [`RwLock`] with non-poisoning guards. Poisoned std
//! locks are recovered transparently (`parking_lot` has no poisoning).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, TryLockError};

/// Guard types match `std`'s; `parking_lot` guards deref identically.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive (non-poisoning facade over `std`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock (non-poisoning facade over `std`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
