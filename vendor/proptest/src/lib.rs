//! Offline shim of the `proptest` subset this workspace's property
//! tests use.
//!
//! Each `proptest!` test runs a fixed number of randomly generated
//! cases from a deterministic seed (derived from the test name), with
//! `prop_assert*` macros mapping to panicking assertions that print the
//! failing inputs. No shrinking — a failing case reports its values
//! directly.
//!
//! Supported strategies: regex-like string patterns limited to
//! `[class]{m,n}` / `[class]` atoms and literals, integer and float
//! ranges, `any::<T>()`, `Just`, tuples, `prop_oneof!`, and
//! `prop::collection::vec`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of random cases each property runs.
pub const CASES: usize = 96;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Mostly ASCII, occasionally wider.
        if rng.gen_bool(0.9) {
            rng.gen_range(0x20u32..0x7f) as u8 as char
        } else {
            char::from_u32(rng.gen_range(0xa0u32..0x2ff)).unwrap_or('ø')
        }
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident)+),)*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 S0),
    (0 S0 1 S1),
    (0 S0 1 S1 2 S2),
    (0 S0 1 S1 2 S2 3 S3),
}

// --------------------------------------------------- string patterns --

/// One atom of a string pattern: a char set with a repetition range.
#[derive(Debug)]
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => return out,
            '-' => {
                // Range if squeezed between two chars; literal otherwise.
                match (prev, chars.peek().copied()) {
                    (Some(lo), Some(hi)) if hi != ']' => {
                        chars.next();
                        for x in (lo as u32 + 1)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(x) {
                                out.push(ch);
                            }
                        }
                        prev = None;
                    }
                    _ => {
                        out.push('-');
                        prev = Some('-');
                    }
                }
            }
            c => {
                out.push(c);
                prev = Some(c);
            }
        }
    }
    panic!("unterminated character class in pattern");
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("pattern repeat lower bound"),
                    hi.trim().parse().expect("pattern repeat upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("pattern repeat count");
                    (n, n)
                }
            }
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => parse_class(&mut chars),
            lit => vec![lit],
        };
        let (min, max) = parse_repeat(&mut chars);
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = if atom.min == atom.max {
                atom.min
            } else {
                rng.gen_range(atom.min..=atom.max)
            };
            for _ in 0..n {
                if !atom.choices.is_empty() {
                    out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
                }
            }
        }
        out
    }
}

// -------------------------------------------------------- collections --

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Vectors of values from `element`, sized within `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min: len.start,
            max: len.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.min == self.max {
                self.min
            } else {
                rng.gen_range(self.min..=self.max)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Weighted-choice strategy built by [`prop_oneof!`].
pub struct OneOf<T: std::fmt::Debug> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

/// Uniform choice among boxed strategies.
pub fn one_of<T: std::fmt::Debug>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    OneOf { options }
}

impl<T: std::fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].generate(rng)
    }
}

/// Deterministic per-test seed.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the test name keeps runs reproducible per test.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Builds a fresh case-generation RNG for one test run.
pub fn case_rng(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name))
}

/// Declares property tests: each `fn` runs [`CASES`] random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::case_rng(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition, reporting the case inputs via panic message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![$(Box::new($strategy)),+])
    };
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        Strategy,
    };

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = super::case_rng("string_patterns");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c/]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '/')));
            let t = Strategy::generate(&"[a-z][a-z0-9-]{0,4}", &mut rng);
            assert!(t.chars().next().unwrap().is_ascii_lowercase());
            assert!(t.len() <= 5 && !t.is_empty());
        }
    }

    proptest! {
        #[test]
        fn ranges_and_vecs(n in 1usize..10, xs in prop::collection::vec(any::<u8>(), 0..6)) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(xs.len() < 6);
        }

        #[test]
        fn oneof_covers_options(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }
}
