//! API-compatible subset of `rand` 0.8 for an offline build environment.
//!
//! Provides [`RngCore`], [`SeedableRng`], the blanket [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`, `fill_bytes`), and
//! [`rngs::StdRng`] as a deterministic xoshiro256++ generator seeded via
//! SplitMix64. All workspace experiments depend only on *deterministic,
//! well-distributed* output, not on matching upstream `rand`'s exact
//! stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from uniform bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over a half-open or inclusive range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[low, high)`; `high` must exceed `low`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                low + unit * (high - low)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                Self::sample_range(rng, low, high)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_range_inclusive(rng, low, high)
    }
}

/// High-level convenience methods, blanket-implemented for any source.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded by SplitMix64 expansion of a `u64`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0usize;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                low += 1;
            }
        }
        assert!((4000..6000).contains(&low), "biased: {low}");
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        for _ in 0..1000 {
            let v = rng.gen_range(0..=3u64);
            assert!(v <= 3);
        }
        let v = rng.gen_range(-5i64..5);
        assert!((-5..5).contains(&v));
        let f = rng.gen_range(0.25f64..0.75);
        assert!((0.25..0.75).contains(&f));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
