//! Deserialization half of the data model.

use std::collections::{BTreeMap, HashMap};
use std::fmt::{self, Display};
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

/// Error raised by a deserializer.
pub trait Error: Sized + std::fmt::Debug + Display {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A sequence/tuple had the wrong number of elements.
    fn invalid_length(len: usize, expected: &str) -> Self {
        Error::custom(format!("invalid length {len}, expected {expected}"))
    }
}

/// A value deserializable from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Drives the deserializer to produce `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Stateful deserialization entry point (serde's `DeserializeSeed`).
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Drives the deserializer with access to the seed's state.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data format that can deserialize the serde data model.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Self-describing formats dispatch on the input; others reject.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a borrowed or transient string.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes opaque bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a fixed-arity tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserializes a struct.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserializes a field or variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skips a value in self-describing formats.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

fn unexpected<V, E: Error>(what: &str) -> Result<V, E> {
    Err(E::custom(format!("unexpected {what}")))
}

/// Drives construction of one value from deserializer callbacks.
///
/// All `visit_*` methods default to an error; implementations override
/// the shapes they accept.
pub trait Visitor<'de>: Sized {
    /// The constructed value.
    type Value;

    /// Describes what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    /// Visits a `bool`.
    fn visit_bool<E: Error>(self, _v: bool) -> Result<Self::Value, E> {
        unexpected("bool")
    }
    /// Visits an `i8`.
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visits an `i16`.
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visits an `i32`.
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Visits an `i64`.
    fn visit_i64<E: Error>(self, _v: i64) -> Result<Self::Value, E> {
        unexpected("i64")
    }
    /// Visits a `u8`.
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits a `u16`.
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits a `u32`.
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Visits a `u64`.
    fn visit_u64<E: Error>(self, _v: u64) -> Result<Self::Value, E> {
        unexpected("u64")
    }
    /// Visits an `f32`.
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    /// Visits an `f64`.
    fn visit_f64<E: Error>(self, _v: f64) -> Result<Self::Value, E> {
        unexpected("f64")
    }
    /// Visits a `char`.
    fn visit_char<E: Error>(self, _v: char) -> Result<Self::Value, E> {
        unexpected("char")
    }
    /// Visits a transient string slice.
    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        unexpected("str")
    }
    /// Visits a string borrowed from the input.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    /// Visits an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Visits transient bytes.
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        unexpected("bytes")
    }
    /// Visits bytes borrowed from the input.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    /// Visits an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    /// Visits `Option::None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        unexpected("none")
    }
    /// Visits `Option::Some`, with the deserializer positioned at the value.
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        unexpected("some")
    }
    /// Visits `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        unexpected("unit")
    }
    /// Visits a newtype struct, positioned at the inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        unexpected("newtype struct")
    }
    /// Visits a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        unexpected("sequence")
    }
    /// Visits a map.
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        unexpected("map")
    }
    /// Visits an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        unexpected("enum")
    }
}

/// Element-by-element access to a sequence being deserialized.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Deserializes the next element through a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserializes the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Remaining length, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map being deserialized.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;

    /// Deserializes the next key through a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserializes the value for the last-returned key.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserializes the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Deserializes the next entry.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    /// Remaining length, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Payload accessor returned alongside the tag.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserializes the variant tag through a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserializes the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant being deserialized.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Consumes a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserializes a newtype variant's payload through a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// Deserializes a newtype variant's payload.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// Deserializes a tuple variant's payload.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserializes a struct variant's payload.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a [`Deserializer`] over it.
pub trait IntoDeserializer<'de, E: Error> {
    /// The produced deserializer.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Wraps `self`.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// A deserializer over a single `u32` (used for variant indices).
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<E>,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;
    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

macro_rules! forward_u32 {
    ($($method:ident)*) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    )*};
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    forward_u32! {
        deserialize_any deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32
        deserialize_i64 deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
        deserialize_f32 deserialize_f64 deserialize_char deserialize_str deserialize_string
        deserialize_bytes deserialize_byte_buf deserialize_option deserialize_unit
        deserialize_seq deserialize_map deserialize_identifier deserialize_ignored_any
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}

// ------------------------------------------------- impls for std types --

macro_rules! deserialize_number {
    ($($t:ty, $deserialize:ident, $visit:ident;)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct NumVisitor;
                impl<'de> Visitor<'de> for NumVisitor {
                    type Value = $t;
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str(stringify!($t))
                    }
                    fn $visit<E: Error>(self, v: $t) -> Result<$t, E> {
                        Ok(v)
                    }
                }
                deserializer.$deserialize(NumVisitor)
            }
        }
    )*};
}

deserialize_number! {
    i8, deserialize_i8, visit_i8;
    i16, deserialize_i16, visit_i16;
    i32, deserialize_i32, visit_i32;
    i64, deserialize_i64, visit_i64;
    u8, deserialize_u8, visit_u8;
    u16, deserialize_u16, visit_u16;
    u32, deserialize_u32, visit_u32;
    u64, deserialize_u64, visit_u64;
    f32, deserialize_f32, visit_f32;
    f64, deserialize_f64, visit_f64;
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UsizeVisitor;
        impl<'de> Visitor<'de> for UsizeVisitor {
            type Value = usize;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("usize")
            }
            fn visit_u64<E: Error>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("usize overflow"))
            }
        }
        deserializer.deserialize_u64(UsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct IsizeVisitor;
        impl<'de> Visitor<'de> for IsizeVisitor {
            type Value = isize;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("isize")
            }
            fn visit_i64<E: Error>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("isize overflow"))
            }
        }
        deserializer.deserialize_i64(IsizeVisitor)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BoolVisitor;
        impl<'de> Visitor<'de> for BoolVisitor {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("bool")
            }
            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(BoolVisitor)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct CharVisitor;
        impl<'de> Visitor<'de> for CharVisitor {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("char")
            }
            fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_char(CharVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("option")
            }
            fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element()? {
                        Some(item) => out.push(item),
                        None => return Err(A::Error::invalid_length(i, "a full array")),
                    }
                }
                out.try_into()
                    .map_err(|_| A::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, ArrayVisitor(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MapVisitor<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + Hash + Eq,
    V: Deserialize<'de>,
    H: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Hash + Eq,
            V: Deserialize<'de>,
            H: BuildHasher + Default,
        {
            type Value = HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::with_hasher(H::default());
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct SetVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for SetVisitor<T> {
            type Value = std::collections::BTreeSet<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeSet::new();
                while let Some(item) = seq.next_element()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(SetVisitor(PhantomData))
    }
}

macro_rules! deserialize_tuples {
    ($(($len:expr => $($n:tt $t:ident)+),)*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str("a tuple")
                    }
                    fn visit_seq<AC: SeqAccess<'de>>(
                        self,
                        mut seq: AC,
                    ) -> Result<Self::Value, AC::Error> {
                        Ok(($(
                            match seq.next_element::<$t>()? {
                                Some(v) => v,
                                None => return Err(AC::Error::invalid_length($n, "a tuple")),
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    )*};
}

deserialize_tuples! {
    (1 => 0 T0),
    (2 => 0 T0 1 T1),
    (3 => 0 T0 1 T1 2 T2),
    (4 => 0 T0 1 T1 2 T2 3 T3),
}
