//! API-compatible subset of `serde` for an offline build environment.
//!
//! The workspace's wire codec (`dacs-wire`) is written *against* the
//! serde data model: it implements `Serializer`/`Deserializer` and the
//! domain crates derive `Serialize`/`Deserialize`. This shim provides
//! the trait surface those implementations use, with the same method
//! signatures and data-model semantics as upstream serde (structs as
//! field sequences, enums as `(variant_index, payload)`, arrays as
//! tuples, `Vec<u8>` as a `u8` sequence).

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
