//! Offline shim of `serde_derive`.
//!
//! Parses the deriving item directly from the token stream (no `syn` /
//! `quote` available offline) and emits `Serialize` / `Deserialize`
//! impls against the vendored `serde` shim. Supported shapes — the ones
//! this workspace uses: unit/tuple/named structs, enums with
//! unit/newtype/tuple/struct variants, and plain type parameters
//! (e.g. `Envelope<B>`). `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    /// Plain type-parameter names, in declaration order.
    generics: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------- parsing --

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let generics = parse_generics(&tokens, &mut i);

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_arity(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("enum {name} without a body: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items (only struct/enum)"),
    };

    Input {
        name,
        generics,
        kind,
    }
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
            *i += 1; // [...]
        }
    }
}

fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) etc.
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `<A, B: Bound, ...>`, collecting type-parameter names.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let open = matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<');
    if !open {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) => {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => at_param_start = true,
                    '\'' => at_param_start = false, // lifetime param: skip its name
                    _ => {}
                }
                *i += 1;
            }
            Some(TokenTree::Ident(id)) => {
                if at_param_start && depth == 1 {
                    params.push(id.to_string());
                    at_param_start = false;
                }
                *i += 1;
            }
            Some(_) => *i += 1,
            None => panic!("unterminated generics"),
        }
    }
    params
}

/// Field names of `{ a: T, pub b: U, ... }` contents.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut i);
        fields.push(expect_ident(&tokens, &mut i));
        // ':' then the type, up to a ',' outside angle brackets.
        let mut angle = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Number of comma-separated entries in a parenthesized field list.
fn count_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut segment_has_tokens = false;
    let mut angle = 0i32;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if segment_has_tokens {
                        arity += 1;
                    }
                    segment_has_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Consume the trailing ',' if present (discriminants unsupported).
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

// ------------------------------------------------------------- codegen --

impl Input {
    /// `<B, C>` or empty.
    fn ty_generics(&self) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics.join(", "))
        }
    }

    /// Impl generics with a per-parameter trait bound.
    fn impl_generics(&self, prefix: &str, bound: &str) -> String {
        let mut parts: Vec<String> = Vec::new();
        if !prefix.is_empty() {
            parts.push(prefix.to_string());
        }
        for p in &self.generics {
            parts.push(format!("{p}: {bound}"));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("<{}>", parts.join(", "))
        }
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let ig = input.impl_generics("", "::serde::ser::Serialize");
    let tg = input.ty_generics();
    let body = match &input.kind {
        Kind::UnitStruct => {
            format!("::serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Kind::TupleStruct(1) => format!(
            "::serde::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Kind::TupleStruct(n) => {
            let mut s = format!(
                "let mut __state = ::serde::ser::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n}usize)?;\n"
            );
            for idx in 0..*n {
                s += &format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{idx})?;\n"
                );
            }
            s + "::serde::ser::SerializeTupleStruct::end(__state)"
        }
        Kind::NamedStruct(fields) => {
            let mut s = format!(
                "let mut __state = ::serde::ser::Serializer::serialize_struct(__serializer, \"{name}\", {}usize)?;\n",
                fields.len()
            );
            for f in fields {
                s += &format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{f}\", &self.{f})?;\n"
                );
            }
            s + "::serde::ser::SerializeStruct::end(__state)"
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        arms += &format!(
                            "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                        );
                    }
                    Shape::Tuple(1) => {
                        arms += &format!(
                            "{name}::{vname}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                        );
                    }
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\nlet mut __state = ::serde::ser::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {n}usize)?;\n",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm += &format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {b})?;\n"
                            );
                        }
                        arm += "::serde::ser::SerializeTupleVariant::end(__state)\n}\n";
                        arms += &arm;
                    }
                    Shape::Named(fields) => {
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __state = ::serde::ser::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                            fields.join(", "),
                            fields.len()
                        );
                        for f in fields {
                            arm += &format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{f}\", {f})?;\n"
                            );
                        }
                        arm += "::serde::ser::SerializeStructVariant::end(__state)\n}\n";
                        arms += &arm;
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{ig} ::serde::ser::Serialize for {name}{tg} {{\n\
           fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
             -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
             {body}\n\
           }}\n\
         }}\n"
    )
}

/// `let __f{k} = next_element()? else err;` lines for a seq visitor.
fn seq_field_lines(n: usize, context: &str) -> String {
    let mut s = String::new();
    for k in 0..n {
        s += &format!(
            "let __f{k} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
               ::core::option::Option::Some(__v) => __v,\n\
               ::core::option::Option::None => return ::core::result::Result::Err(\n\
                 ::serde::de::Error::invalid_length({k}usize, \"{context}\")),\n\
             }};\n"
        );
    }
    s
}

/// A visitor definition whose `visit_seq` builds `constructor` from
/// `arity` sequential fields.
fn seq_visitor(
    input: &Input,
    visitor_name: &str,
    arity: usize,
    constructor: &str,
    context: &str,
) -> String {
    let name = &input.name;
    let tg = input.ty_generics();
    let ig = input.impl_generics("'de", "::serde::de::Deserialize<'de>");
    let decl_generics = input.ty_generics();
    let fields = seq_field_lines(arity, context);
    format!(
        "struct {visitor_name}{decl_generics}(::core::marker::PhantomData<fn() -> {name}{tg}>);\n\
         impl{ig} ::serde::de::Visitor<'de> for {visitor_name}{tg} {{\n\
           type Value = {name}{tg};\n\
           fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
             __f.write_str(\"{context}\")\n\
           }}\n\
           fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
             -> ::core::result::Result<Self::Value, __A::Error> {{\n\
             {fields}\n\
             ::core::result::Result::Ok({constructor})\n\
           }}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let ig = input.impl_generics("'de", "::serde::de::Deserialize<'de>");
    let tg = input.ty_generics();
    let phantom = "::core::marker::PhantomData";

    let body = match &input.kind {
        Kind::UnitStruct => {
            let visitor = format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                   type Value = {name};\n\
                   fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                     __f.write_str(\"unit struct {name}\")\n\
                   }}\n\
                   fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<Self::Value, __E> {{\n\
                     ::core::result::Result::Ok({name})\n\
                   }}\n\
                 }}\n"
            );
            format!(
                "{visitor}\n::serde::de::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __Visitor)"
            )
        }
        Kind::TupleStruct(1) => {
            let decl_generics = input.ty_generics();
            let visitor = format!(
                "struct __Visitor{decl_generics}({phantom}<fn() -> {name}{tg}>);\n\
                 impl{ig} ::serde::de::Visitor<'de> for __Visitor{tg} {{\n\
                   type Value = {name}{tg};\n\
                   fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                     __f.write_str(\"newtype struct {name}\")\n\
                   }}\n\
                   fn visit_newtype_struct<__D2: ::serde::de::Deserializer<'de>>(self, __d: __D2)\n\
                     -> ::core::result::Result<Self::Value, __D2::Error> {{\n\
                     ::core::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(__d)?))\n\
                   }}\n\
                 }}\n"
            );
            format!(
                "{visitor}\n::serde::de::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __Visitor({phantom}))"
            )
        }
        Kind::TupleStruct(n) => {
            let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
            let constructor = format!("{name}({})", binders.join(", "));
            let visitor = seq_visitor(
                input,
                "__Visitor",
                *n,
                &constructor,
                &format!("tuple struct {name}"),
            );
            format!(
                "{visitor}\n::serde::de::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {n}usize, __Visitor({phantom}))"
            )
        }
        Kind::NamedStruct(fields) => {
            let constructor = format!(
                "{name} {{ {} }}",
                fields
                    .iter()
                    .enumerate()
                    .map(|(k, f)| format!("{f}: __f{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let visitor = seq_visitor(
                input,
                "__Visitor",
                fields.len(),
                &constructor,
                &format!("struct {name}"),
            );
            let field_names = fields
                .iter()
                .map(|f| format!("\"{f}\""))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{visitor}\n::serde::de::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{field_names}], __Visitor({phantom}))"
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            let mut variant_visitors = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        arms += &format!(
                            "{idx}u32 => {{ ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                             ::core::result::Result::Ok({name}::{vname}) }}\n"
                        );
                    }
                    Shape::Tuple(1) => {
                        arms += &format!(
                            "{idx}u32 => ::core::result::Result::Ok({name}::{vname}(\n\
                               ::serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                        );
                    }
                    Shape::Tuple(n) => {
                        let visitor_name = format!("__Variant{idx}Visitor");
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let constructor = format!("{name}::{vname}({})", binders.join(", "));
                        variant_visitors += &seq_visitor(
                            input,
                            &visitor_name,
                            *n,
                            &constructor,
                            &format!("tuple variant {name}::{vname}"),
                        );
                        arms += &format!(
                            "{idx}u32 => ::serde::de::VariantAccess::tuple_variant(__variant, {n}usize, {visitor_name}({phantom})),\n"
                        );
                    }
                    Shape::Named(fields) => {
                        let visitor_name = format!("__Variant{idx}Visitor");
                        let constructor = format!(
                            "{name}::{vname} {{ {} }}",
                            fields
                                .iter()
                                .enumerate()
                                .map(|(k, f)| format!("{f}: __f{k}"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        variant_visitors += &seq_visitor(
                            input,
                            &visitor_name,
                            fields.len(),
                            &constructor,
                            &format!("struct variant {name}::{vname}"),
                        );
                        let field_names = fields
                            .iter()
                            .map(|f| format!("\"{f}\""))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms += &format!(
                            "{idx}u32 => ::serde::de::VariantAccess::struct_variant(__variant, &[{field_names}], {visitor_name}({phantom})),\n"
                        );
                    }
                }
            }
            let variant_names = variants
                .iter()
                .map(|v| format!("\"{}\"", v.name))
                .collect::<Vec<_>>()
                .join(", ");
            let decl_generics = input.ty_generics();
            format!(
                "{variant_visitors}\n\
                 struct __Visitor{decl_generics}({phantom}<fn() -> {name}{tg}>);\n\
                 impl{ig} ::serde::de::Visitor<'de> for __Visitor{tg} {{\n\
                   type Value = {name}{tg};\n\
                   fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                     __f.write_str(\"enum {name}\")\n\
                   }}\n\
                   fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A)\n\
                     -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                     let (__idx, __variant): (u32, __A::Variant) =\n\
                       ::serde::de::EnumAccess::variant(__data)?;\n\
                     match __idx {{\n\
                       {arms}\n\
                       _ => ::core::result::Result::Err(::serde::de::Error::custom(\n\
                         \"invalid variant index for {name}\")),\n\
                     }}\n\
                   }}\n\
                 }}\n\
                 ::serde::de::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{variant_names}], __Visitor({phantom}))"
            )
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl{ig} ::serde::de::Deserialize<'de> for {name}{tg} {{\n\
           fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D)\n\
             -> ::core::result::Result<Self, __D::Error> {{\n\
             {body}\n\
           }}\n\
         }}\n"
    )
}
